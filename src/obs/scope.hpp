// obs::Scope — the handle the runtime threads into each subsystem.
//
// A Scope bundles the registry, the trace ring, a virtual-clock pointer and
// a key prefix (plus an optional workload index for per-app subsystems).
// Default-constructed Scopes are inert: instruments resolve to shared
// throwaway sinks and events vanish, so subsystems instrument
// unconditionally with zero configuration and near-zero cost when
// observability is off.
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace vulcan::obs {

namespace detail {
/// Shared sinks for inert scopes. Their values are meaningless and never
/// read; they only make the null case branch-free for callers.
inline Counter dummy_counter;
inline Gauge dummy_gauge;
inline Histogram dummy_histogram{{}};
}  // namespace detail

class Scope {
 public:
  Scope() = default;
  Scope(Registry* registry, TraceRing* trace, const sim::Cycles* clock,
        std::string prefix, std::int32_t workload = -1,
        SpanRecorder* spans = nullptr)
      : registry_(registry),
        trace_(trace),
        clock_(clock),
        spans_(spans),
        prefix_(std::move(prefix)),
        workload_(workload) {}

  bool active() const { return registry_ != nullptr || trace_ != nullptr; }
  std::int32_t workload() const { return workload_; }
  const std::string& prefix() const { return prefix_; }

  /// Derived scope with `suffix` appended to the key prefix.
  Scope sub(std::string_view suffix) const {
    Scope s = *this;
    s.prefix_ = prefix_.empty() ? std::string(suffix)
                                : prefix_ + "." + std::string(suffix);
    return s;
  }

  /// Derived scope bound to one workload index.
  Scope for_workload(std::int32_t w) const {
    Scope s = *this;
    s.workload_ = w;
    return s;
  }

  Counter& counter(std::string_view name) const {
    return registry_ ? registry_->counter(key(name)) : detail::dummy_counter;
  }
  Gauge& gauge(std::string_view name) const {
    return registry_ ? registry_->gauge(key(name)) : detail::dummy_gauge;
  }
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds) const {
    return registry_ ? registry_->histogram(key(name), bounds)
                     : detail::dummy_histogram;
  }

  /// Emit a trace event stamped with the scope's clock and workload.
  void event(EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
             double v = 0.0) const {
    if (!trace_) return;
    TraceEvent e;
    e.time = clock_ ? *clock_ : 0;
    e.kind = kind;
    e.workload = workload_;
    e.a = a;
    e.b = b;
    e.v = v;
    trace_->emit(e);
  }
  bool tracing() const { return trace_ != nullptr; }

  /// The shared span recorder; nullptr when spans are unwired.
  SpanRecorder* spans() const { return spans_; }

  /// Open a timeline span tagged with the scope's workload. Inert (returns
  /// a no-op handle) when no recorder is wired.
  ScopedSpan span(SpanKind kind, double arg = 0.0, std::uint8_t tier = 0,
                  std::uint16_t thread = 0) const {
    if (!spans_) return {};
    return {spans_, spans_->begin(kind, workload_, arg, tier, thread)};
  }

 private:
  std::string key(std::string_view name) const {
    return prefix_.empty() ? std::string(name)
                           : prefix_ + "." + std::string(name);
  }

  Registry* registry_ = nullptr;
  TraceRing* trace_ = nullptr;
  const sim::Cycles* clock_ = nullptr;
  SpanRecorder* spans_ = nullptr;
  std::string prefix_;
  std::int32_t workload_ = -1;
};

}  // namespace vulcan::obs

#include "obs/flightrec.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string_view>

namespace vulcan::obs {

namespace {

void write_escaped(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

/// Shortest round-trip double literal (matches the registry's JSON writer
/// philosophy: deterministic bytes for a deterministic value).
void write_double(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

/// Re-emit a JSONL blob as comma-joined array elements (one per line).
void write_joined_lines(std::ostream& out, const std::string& jsonl) {
  bool first = true;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t end = jsonl.find('\n', pos);
    if (end == std::string::npos) end = jsonl.size();
    if (end > pos) {
      out << (first ? "" : ",\n");
      out.write(jsonl.data() + pos, static_cast<std::streamsize>(end - pos));
      first = false;
    }
    pos = end + 1;
  }
  if (!first) out << "\n";
}

constexpr std::size_t npos = std::string::npos;

/// Region-bounded raw token after `"key":` — like trace.cpp's raw_field,
/// plus whitespace and escape awareness (header strings are escaped).
std::string_view token_in(std::string_view text, std::string_view key,
                          std::size_t from, std::size_t to) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = text.find(needle, from);
  if (pos == npos || pos >= to) return {};
  std::size_t start = pos + needle.size();
  while (start < to && text[start] == ' ') ++start;
  std::size_t end = start;
  bool in_string = false;
  bool escaped = false;
  while (end < to) {
    const char c = text[end];
    if (escaped) {
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == ',' || c == '}' || c == '\n')) {
      break;
    }
    ++end;
  }
  return text.substr(start, end - start);
}

std::string unquote(std::string_view tok) {
  if (tok.size() >= 2 && tok.front() == '"' && tok.back() == '"') {
    tok = tok.substr(1, tok.size() - 2);
  }
  std::string out;
  out.reserve(tok.size());
  for (std::size_t i = 0; i < tok.size(); ++i) {
    const char c = tok[i];
    if (c == '\\' && i + 1 < tok.size()) {
      const char n = tok[++i];
      switch (n) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': i += 4; out += '?'; break;  // lossy, fine for reports
        default: out += n; break;
      }
    } else {
      out += c;
    }
  }
  return out;
}

std::uint64_t tok_u64(std::string_view tok) {
  return std::strtoull(std::string(tok).c_str(), nullptr, 10);
}

std::int64_t tok_i64(std::string_view tok) {
  return std::strtoll(std::string(tok).c_str(), nullptr, 10);
}

double tok_double(std::string_view tok) {
  return std::strtod(std::string(tok).c_str(), nullptr);
}

/// Visit every line in text[from, to).
template <typename Fn>
void each_line(std::string_view text, std::size_t from, std::size_t to,
               Fn&& fn) {
  while (from < to) {
    std::size_t end = text.find('\n', from);
    if (end == npos || end > to) end = to;
    if (end > from) fn(text.substr(from, end - from));
    from = end + 1;
  }
}

}  // namespace

bool FlightRecorder::dump(std::ostream& out, const DumpInfo& info) const {
  if (!enabled()) return false;
  char buf[64];

  // Header. Section order is load-bearing: the offline readers are lenient
  // scanners, and the registry snapshot must own the first quoted
  // "counters" token in the file (string payloads above it are escaped, so
  // they can never contain the bare token).
  out << "{\n\"flight_version\": 1,\n\"reason\": \"";
  write_escaped(out, info.reason);
  out << "\",\n\"cause\": \"";
  write_escaped(out, info.cause);
  out << "\",\n\"epoch\": " << info.epoch << ",\n";
  std::snprintf(buf, sizeof buf, "%.6f", sim::CpuClock::to_seconds(info.now));
  out << "\"t_s\": " << buf << ",\n"
      << "\"trace_horizon_epochs\": " << cfg_.epochs << ",\n";

  // SLO instance states (empty when no monitor is installed).
  out << "\"slo\": [\n";
  if (slo_) {
    bool first = true;
    const std::vector<SloSpec>& specs = slo_->specs();
    for (const SloRuleState& st : slo_->states()) {
      const SloSpec& spec = specs[st.rule];
      out << (first ? "" : ",\n") << "{\"rule\":\"";
      write_escaped(out, spec.name);
      out << "\",\"severity\":\"" << slo_severity_name(spec.severity)
          << "\",\"app\":" << st.app
          << ",\"violated\":" << (st.violated ? "true" : "false")
          << ",\"value\":";
      write_double(out, st.value);
      out << ",\"breach_streak\":" << st.breach_streak
          << ",\"ok_streak\":" << st.ok_streak << ",\"fired\":"
          << st.violations << "}";
      first = false;
    }
    if (!first) out << "\n";
  }
  out << "],\n";

  // Last audit report (present: false until the first audit ran).
  const bool audit_present =
      last_audit_ &&
      (last_audit_->checks > 0 || !last_audit_->violations.empty());
  out << "\"audit\": {\"present\": " << (audit_present ? "true" : "false");
  if (audit_present) {
    out << ", \"epoch\": " << last_audit_->epoch << ", \"checks\": "
        << last_audit_->checks << ", \"level\": \""
        << check::audit_level_name(last_audit_->level) << "\"";
  }
  out << ", \"entries\": [\n";
  if (audit_present) {
    bool first = true;
    for (const check::Violation& v : last_audit_->violations) {
      out << (first ? "" : ",\n") << "{\"rule\":\""
          << check::audit_rule_name(v.rule) << "\",\"w\":" << v.workload
          << ",\"detail\":" << v.detail << ",\"value\":";
      write_double(out, v.value);
      out << ",\"message\":\"";
      write_escaped(out, v.message);
      out << "\"}";
      first = false;
    }
    if (!first) out << "\n";
  }
  out << "]},\n";

  // Trace tail: events from the last `epochs` epochs (the ring may retain
  // less; the tail is the intersection).
  out << "\"trace\": [\n";
  if (trace_) {
    const sim::Cycles horizon =
        cfg_.epoch * static_cast<sim::Cycles>(cfg_.epochs);
    const sim::Cycles cutoff =
        (horizon > 0 && info.now > horizon) ? info.now - horizon : 0;
    std::vector<TraceEvent> tail;
    for (const TraceEvent& e : trace_->events()) {
      if (e.time >= cutoff) tail.push_back(e);
    }
    std::ostringstream lines;
    TraceRing::write_events_jsonl(tail, lines);
    write_joined_lines(out, lines.str());
  }
  out << "],\n";

  // Full registry snapshot, verbatim Registry::write_json output.
  out << "\"metrics\": ";
  {
    std::ostringstream mjson;
    registry_->write_json(mjson);
    std::string m = mjson.str();
    while (!m.empty() && m.back() == '\n') m.pop_back();
    out << m;
  }
  out << ",\n";

  // Every retained time-series window, one JSONL row per element.
  out << "\"timeseries\": [\n";
  if (timeseries_) {
    std::ostringstream rows;
    timeseries_->write_jsonl(rows);
    write_joined_lines(out, rows.str());
  }
  out << "]";

  // Provenance-ledger tail. Written only when a ledger was wired in, so
  // dumps of ledger-free runs keep their exact pre-provenance bytes.
  if (provenance_) {
    constexpr std::size_t kTailRows = 64;
    out << ",\n\"provenance\": {\"total_decisions\": "
        << provenance_->total_decisions()
        << ", \"total_transitions\": " << provenance_->total_transitions()
        << ", \"pending\": " << provenance_->pending() << ", \"tail\": [\n";
    std::ostringstream rows;
    provenance_->write_decisions_tail_jsonl(rows, kTailRows);
    write_joined_lines(out, rows.str());
    out << "]}";
  }
  out << "\n}\n";
  return out.good();
}

bool FlightRecorder::dump_file(const std::string& path,
                               const DumpInfo& info) const {
  if (!enabled() || path.empty()) return false;
  std::ofstream out(path);
  if (!out) return false;
  const bool ok = dump(out, info);
  out.flush();
  return ok && out.good();
}

bool FlightRecorder::auto_dump(const DumpInfo& info) {
  if (!enabled() || cfg_.dump_path.empty() || auto_dumped_) return false;
  auto_dumped_ = true;  // one shot, even if the write fails
  if (!dump_file(cfg_.dump_path, info)) return false;
  auto_dump_path_ = cfg_.dump_path;
  return true;
}

std::optional<FlightDump> FlightDump::parse(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string_view tv(text);
  if (tv.find("\"flight_version\":") == npos) return std::nullopt;

  // Section anchors. Newline-anchored needles cannot match inside string
  // payloads (real newlines there are escaped to "\n").
  const std::size_t pos_slo = tv.find("\n\"slo\": [");
  const std::size_t pos_audit = tv.find("\n\"audit\": {");
  const std::size_t pos_trace = tv.find("\n\"trace\": [");
  const std::size_t pos_ts = tv.find("\n\"timeseries\": [");

  FlightDump d;
  const std::size_t header_end = pos_slo == npos ? tv.size() : pos_slo;
  d.version = tok_u64(token_in(tv, "flight_version", 0, header_end));
  d.reason = unquote(token_in(tv, "reason", 0, header_end));
  d.cause = unquote(token_in(tv, "cause", 0, header_end));
  d.epoch = tok_u64(token_in(tv, "epoch", 0, header_end));
  d.t_s = tok_double(token_in(tv, "t_s", 0, header_end));

  if (pos_slo != npos && pos_audit != npos) {
    each_line(tv, pos_slo + 1, pos_audit, [&](std::string_view line) {
      if (line.find("\"rule\":") == npos) return;
      SloInstance s;
      s.rule = unquote(token_in(line, "rule", 0, line.size()));
      s.severity = unquote(token_in(line, "severity", 0, line.size()));
      s.app = static_cast<std::int32_t>(
          tok_i64(token_in(line, "app", 0, line.size())));
      s.violated = token_in(line, "violated", 0, line.size()) == "true";
      s.value = tok_double(token_in(line, "value", 0, line.size()));
      s.violations = tok_u64(token_in(line, "fired", 0, line.size()));
      d.slo.push_back(std::move(s));
    });
  }

  if (pos_audit != npos) {
    const std::size_t audit_end = pos_trace == npos ? tv.size() : pos_trace;
    d.audit_present =
        token_in(tv, "present", pos_audit, audit_end) == "true";
    if (d.audit_present) {
      d.audit_epoch = tok_u64(token_in(tv, "epoch", pos_audit, audit_end));
      d.audit_checks = tok_u64(token_in(tv, "checks", pos_audit, audit_end));
      d.audit_level = unquote(token_in(tv, "level", pos_audit, audit_end));
      each_line(tv, pos_audit + 1, audit_end, [&](std::string_view line) {
        if (line.find("\"message\":") == npos) return;
        AuditViolation v;
        v.rule = unquote(token_in(line, "rule", 0, line.size()));
        v.workload = static_cast<std::int32_t>(
            tok_i64(token_in(line, "w", 0, line.size())));
        v.detail = tok_u64(token_in(line, "detail", 0, line.size()));
        v.value = tok_double(token_in(line, "value", 0, line.size()));
        v.message = unquote(token_in(line, "message", 0, line.size()));
        d.audit_violations.push_back(std::move(v));
      });
    }
  }

  // The lenient line readers handle the rest: read_jsonl keeps only lines
  // whose "kind" is a trace kind, parse_json scans for the first quoted
  // "counters"/"gauges"/"histograms" sections (the embedded snapshot).
  {
    std::istringstream stream(text);
    d.trace = TraceRing::read_jsonl(stream);
  }
  {
    std::istringstream stream(text);
    d.metrics.parse_json(stream);
  }
  const std::size_t pos_prov = tv.find("\n\"provenance\": {");
  if (pos_ts != npos) {
    const std::size_t ts_end = pos_prov == npos ? tv.size() : pos_prov;
    each_line(tv, pos_ts + 1, ts_end, [&](std::string_view line) {
      if (line.find("\"key\":") != npos) ++d.timeseries_rows;
    });
  }
  if (pos_prov != npos) {
    d.provenance_present = true;
    d.provenance_decisions =
        tok_u64(token_in(tv, "total_decisions", pos_prov, tv.size()));
    d.provenance_transitions =
        tok_u64(token_in(tv, "total_transitions", pos_prov, tv.size()));
    d.provenance_pending =
        tok_u64(token_in(tv, "pending", pos_prov, tv.size()));
    std::istringstream stream(text.substr(pos_prov));
    d.provenance_tail = ProvenanceLedger::read_decisions_jsonl(stream);
  }
  return d;
}

void write_flight_report(const FlightDump& dump, std::ostream& out) {
  char buf[64];
  out << "vulcan flight recorder dump\n"
      << "===========================\n"
      << "reason:  " << dump.reason << "\n";
  if (!dump.cause.empty()) out << "cause:   " << dump.cause << "\n";
  std::snprintf(buf, sizeof buf, "%.3f", dump.t_s);
  out << "epoch:   " << dump.epoch << "   t: " << buf << " s\n"
      << "trace:   " << dump.trace.size()
      << " events   timeseries rows: " << dump.timeseries_rows << "\n";
  if (dump.provenance_present) {
    out << "ledger:  " << dump.provenance_decisions << " decisions ("
        << dump.provenance_pending << " pending), "
        << dump.provenance_transitions << " transitions, tail of "
        << dump.provenance_tail.size() << "\n";
  }
  out << "\n";

  if (dump.slo.empty()) {
    out << "slo: no monitor installed\n\n";
  } else {
    std::size_t active = 0;
    for (const auto& s : dump.slo) active += s.violated ? 1 : 0;
    out << "slo instances (" << active << " in violation):\n";
    out << "  state     severity  rule                      app"
        << "       value  fired\n";
    for (const auto& s : dump.slo) {
      std::snprintf(buf, sizeof buf, "%12.4f", s.value);
      out << "  " << std::left << std::setw(10)
          << (s.violated ? "VIOLATED" : "ok") << std::setw(10) << s.severity
          << std::setw(24) << s.rule << std::right << std::setw(5)
          << (s.app < 0 ? std::string("-") : std::to_string(s.app)) << buf
          << std::setw(7) << s.violations << "\n";
    }
    out << "\n";
  }

  if (!dump.audit_present) {
    out << "last audit: none recorded\n\n";
  } else {
    out << "last audit: epoch=" << dump.audit_epoch
        << " level=" << dump.audit_level << " checks=" << dump.audit_checks
        << " violations=" << dump.audit_violations.size() << "\n";
    for (const auto& v : dump.audit_violations) {
      out << "  - [" << v.rule << "] w=" << v.workload
          << " detail=" << v.detail << ": " << v.message << "\n";
    }
    out << "\n";
  }

  write_fairness_report(dump.metrics, dump.trace, out);
}

}  // namespace vulcan::obs

// mig::AdmissionController — benefit/cost veto stage in front of the
// migrator.
//
// CBFRP and the baseline policies decide *which* pages move but never ask
// whether a move is worth its cost; antagonist-heavy co-locations burn
// migration bandwidth (and shootdown IPIs charged to victims) on moves
// that never pay off. The controller sits between policy::record_decision
// and Migrator::execute and scores every MigrationRequest:
//
//   predicted cost     composed from the calibrated sim::CostModel for the
//                      path the migrator would actually take — shadow
//                      remap (no copy) vs five-phase, single page vs whole
//                      chunk, DMA vs CPU copy — with the shootdown term
//                      sized from the live sharer set the migrator proves
//                      via per-thread page tables.
//   predicted benefit  the decision's heat margin over its own admission
//                      threshold (MigrationRequest::predicted_benefit,
//                      positive iff the issuing policy predicts profit),
//                      converted to cycles via a calibrated slope.
//
// A request is vetoed when the benefit does not clear `margin` times the
// cost, when its benefit is non-positive (a wrong-direction move), or when
// it is a promotion into a destination tier with no headroom (it would
// abort kDestinationFull after paying unmap + shootdown anyway). Demotions
// out of a nearly-full tier are exempt: pressure relief must never be
// vetoed, or the veto starves the very quota enforcement fairness rests
// on.
//
// The controller is pure arithmetic plus adm.* counters; it is OFF unless
// SystemBuilder.admission wires it, and a null controller pointer in the
// migrator leaves every admission-off code path byte-identical.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "mig/migration.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
#include "sim/cost_model.hpp"

namespace vulcan::mig {

/// Tunables of the veto stage (SystemBuilder.admission).
struct AdmissionSpec {
  bool enabled = false;
  /// Benefit must exceed `margin` x predicted cost (in cycles) to pass.
  double margin = 1.0;
  /// Cycles of predicted saved access latency per unit of heat margin per
  /// page. Calibrated against the dilemma/fleet scenarios: heat is the
  /// tracker's decayed access score, and a page one heat-unit above its
  /// policy's cut amortises roughly this many cycles of tier-latency gap
  /// before the next ranking flips it back.
  double benefit_per_heat = 4000.0;
  /// Veto promotions whose destination tier has less than this free
  /// fraction (the move would abort kDestinationFull after paying the
  /// unmap and shootdown phases).
  double pressure_floor = 0.02;
  /// Admit every demotion out of a tier with less than this free fraction
  /// regardless of score: pressure relief backs the fairness quotas.
  double relief_floor = 0.0625;
};

/// Everything the migrator knows about one request at admission time.
struct AdmissionInputs {
  bool promotion = false;
  /// Clean demotion satisfiable by a live shadow copy: pure remap, no copy.
  bool shadow_path = false;
  /// Copy is queued to a DMA engine (cheap CPU-side setup only).
  bool dma_copy = false;
  std::uint64_t pages = 1;  ///< 1, or the chunk size for whole-chunk moves
  /// Remote cores the shootdown would IPI (live sharer set under targeted
  /// shootdown, the process broadcast set otherwise).
  unsigned predicted_ipis = 0;
  double predicted_benefit = 0.0;  ///< MigrationRequest::predicted_benefit
  double dest_free_fraction = 1.0;
  double source_free_fraction = 1.0;
};

struct AdmissionVerdict {
  bool admitted = true;
  obs::MigAbortReason reason = obs::MigAbortReason::kNone;
  sim::Cycles predicted_cost = 0;
  double benefit_cycles = 0.0;
};

class AdmissionController {
 public:
  AdmissionController(const AdmissionSpec& spec,
                      const sim::CostModelParams& cost_params)
      : spec_(spec), cost_(cost_params) {}

  const AdmissionSpec& spec() const { return spec_; }

  /// Attach observability: verdicts land as adm.admitted / adm.vetoed
  /// counters plus `{policy,reason}`-labelled variants, feeding the
  /// time-series store and the admission-veto-share SLO rule. `policy` is
  /// the running policy's name (every workload shares one controller).
  void set_obs(obs::Scope scope, std::string policy);

  /// Predicted cycle cost of executing `in` (prep excluded — it is charged
  /// once per execute() batch, not per request).
  sim::Cycles predict_cost(const AdmissionInputs& in) const;

  /// Score one request and record the verdict in the adm.* counters.
  AdmissionVerdict assess(const AdmissionInputs& in);

  std::uint64_t admitted() const { return admitted_total_; }
  std::uint64_t vetoed() const { return vetoed_total_; }

 private:
  static constexpr std::size_t kVetoReasons = 3;  // benefit, cost, pressure

  AdmissionSpec spec_;
  sim::CostModel cost_;
  obs::Scope obs_;
  std::uint64_t admitted_total_ = 0;
  std::uint64_t vetoed_total_ = 0;
  obs::Counter* admitted_count_ = &obs::detail::dummy_counter;
  obs::Counter* admitted_policy_count_ = &obs::detail::dummy_counter;
  obs::Counter* vetoed_count_ = &obs::detail::dummy_counter;
  std::array<obs::Counter*, kVetoReasons> veto_reason_counts_{
      &obs::detail::dummy_counter, &obs::detail::dummy_counter,
      &obs::detail::dummy_counter};
};

}  // namespace vulcan::mig

// Shared migration types.
#pragma once

#include <cstdint>

#include "mem/tier.hpp"
#include "sim/clock.hpp"
#include "vm/types.hpp"

namespace vulcan::mig {

/// Sync copy blocks the application for the duration (TPP promotion);
/// async copy runs on migration threads off the critical path (Memtis,
/// Nomad), at the price of dirty-page retries for write-hot pages.
enum class CopyMode : std::uint8_t { kSync, kAsync };

/// One migration order produced by a policy, executed by a Migrator.
struct MigrationRequest {
  vm::Vpn vpn = 0;
  mem::TierId to = mem::kFastTier;
  CopyMode mode = CopyMode::kSync;
  /// Page-table sharing state (drives targeted shootdown scope).
  bool shared = true;
  vm::ThreadId owner = 0;  ///< valid when !shared
  /// Write intensity per the heat tracker (drives retry risk for async).
  bool write_intensive = false;
  /// Migrate the whole 2 MB chunk containing `vpn` as a unit and keep (or
  /// re-establish) its huge mapping — the Memtis-style page-size
  /// alternative to Vulcan's split-on-promotion. Costs are batched; the
  /// trade is TLB coverage vs fast-tier capacity spent on cold tail pages.
  bool whole_chunk = false;
  double heat = 0.0;
  /// Heat margin over the threshold the issuing policy measured the page
  /// against, signed towards the move's direction: positive iff the policy
  /// predicts the move is profitable (promotions want heat above the cut,
  /// demotions below it). Stamped by policy::record_decision; admission
  /// control scores it against the predicted migration cost.
  double predicted_benefit = 0.0;
  /// Provenance ledger decision id (policy::record_decision); 0 = none.
  /// The migrator links the executed outcome back to this record.
  std::uint64_t provenance = 0;
};

/// Aggregated outcome of executing a batch of requests.
struct MigrationStats {
  std::uint64_t attempted = 0;
  std::uint64_t vetoed = 0;          ///< rejected by admission control
  std::uint64_t migrated = 0;
  std::uint64_t failed = 0;          ///< async aborts (dirty retries exhausted)
  std::uint64_t shadow_remaps = 0;   ///< demotions satisfied by a shadow copy
  std::uint64_t retries = 0;         ///< async dirty re-copies
  std::uint64_t private_migrated = 0;  ///< migrations of exclusively-owned pages
  std::uint64_t shootdown_ipis = 0;  ///< remote cores interrupted on our behalf
  sim::Cycles stall_cycles = 0;      ///< charged to the application threads
  sim::Cycles daemon_cycles = 0;     ///< charged to migration threads
  std::uint64_t bytes_copied = 0;

  MigrationStats& operator+=(const MigrationStats& o) {
    attempted += o.attempted;
    vetoed += o.vetoed;
    migrated += o.migrated;
    failed += o.failed;
    shadow_remaps += o.shadow_remaps;
    retries += o.retries;
    private_migrated += o.private_migrated;
    shootdown_ipis += o.shootdown_ipis;
    stall_cycles += o.stall_cycles;
    daemon_cycles += o.daemon_cycles;
    bytes_copied += o.bytes_copied;
    return *this;
  }
};

}  // namespace vulcan::mig

// Sync vs async page-copy engines for hot-page promotion (Observation #4,
// Fig. 4 microbenchmark): a page is promoted while a thread keeps accessing
// it with a given read/write mix.
//
//   Sync   stalls the accessing thread for the whole migration path, then
//          serves from the fast tier — predictable, write-proof.
//   Async  copies in the background while accesses continue against the old
//          (slow) frame; a write during the copy dirties the page and forces
//          a re-copy; after `max_retries` failed attempts the migration
//          aborts and the page stays slow (Nomad-style failure mode).
//
// The engines compute *expected* outcomes analytically, so benchmark curves
// are smooth and deterministic; the Migrator uses the same probabilities for
// per-page stochastic decisions.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/clock.hpp"
#include "sim/cost_model.hpp"

namespace vulcan::mig {

/// The Fig. 4 promotion scenario.
struct PromotionScenario {
  double read_ratio = 1.0;            ///< fraction of accesses that read
  sim::Cycles window = 3'000'000;     ///< measurement window (1 ms @ 3 GHz)
  sim::Cycles fast_access = 230;      ///< per-op cycles on the fast tier
  sim::Cycles slow_access = 506;      ///< per-op cycles on the slow tier
  /// Accesses landing on the migrating page during one copy attempt
  /// (page-access rate x copy duration).
  double accesses_per_copy = 4.0;
  unsigned max_retries = 3;           ///< async re-copy attempts
  /// Full synchronous migration stall (prep + unmap + shootdown + copy +
  /// remap on the cold path).
  sim::Cycles sync_stall = 620'000;
  /// One background copy attempt (copy + remap only; prep amortised).
  sim::Cycles async_copy = 16'000;
};

struct PromotionOutcome {
  double ops = 0.0;            ///< expected operations completed in window
  double migrate_prob = 0.0;   ///< probability the page ends up fast
  double expected_copies = 0.0;
  sim::Cycles app_stall = 0;   ///< cycles the app was blocked
};

/// Probability one async copy attempt is dirtied by a concurrent write.
inline double dirty_probability(const PromotionScenario& s) {
  const double w = std::clamp(1.0 - s.read_ratio, 0.0, 1.0);
  return 1.0 - std::pow(1.0 - w, s.accesses_per_copy);
}

/// Synchronous promotion: stall, then fast for the rest of the window.
inline PromotionOutcome promote_sync(const PromotionScenario& s) {
  PromotionOutcome o;
  const sim::Cycles stall = std::min(s.sync_stall, s.window);
  const sim::Cycles remaining = s.window - stall;
  o.ops = static_cast<double>(remaining) /
          static_cast<double>(s.fast_access);
  o.migrate_prob = 1.0;
  o.expected_copies = 1.0;
  o.app_stall = stall;
  return o;
}

/// Asynchronous promotion with dirty retries: expected-value composition
/// over the attempt geometric.
inline PromotionOutcome promote_async(const PromotionScenario& s) {
  PromotionOutcome o;
  const double p = dirty_probability(s);
  const unsigned k = std::max(1u, s.max_retries);
  const double fail_all = std::pow(p, static_cast<double>(k));
  o.migrate_prob = 1.0 - fail_all;

  // Expected number of attempts (truncated geometric, counting the final
  // attempt whether it succeeds or exhausts the budget).
  double expected_attempts = 0.0;
  double reach = 1.0;  // probability of starting attempt i
  for (unsigned i = 0; i < k; ++i) {
    expected_attempts += reach;
    reach *= p;
  }
  o.expected_copies = expected_attempts;

  // Expected time spent with the page still slow: attempts in flight.
  const double slow_time = std::min<double>(
      expected_attempts * static_cast<double>(s.async_copy),
      static_cast<double>(s.window));
  const double fast_time =
      (static_cast<double>(s.window) - slow_time) * o.migrate_prob;
  const double slow_total =
      static_cast<double>(s.window) - fast_time;
  o.ops = fast_time / static_cast<double>(s.fast_access) +
          slow_total / static_cast<double>(s.slow_access);
  o.app_stall = 0;  // fully off the critical path
  return o;
}

/// Per-page async success probability used by the Migrator for stochastic
/// page-level decisions: write-intensive pages fail with prob p^k.
inline double async_success_probability(bool write_intensive,
                                        unsigned max_retries,
                                        double accesses_per_copy = 4.0) {
  PromotionScenario s;
  s.read_ratio = write_intensive ? 0.5 : 0.98;
  s.accesses_per_copy = accesses_per_copy;
  s.max_retries = max_retries;
  const double p = dirty_probability(s);
  return 1.0 - std::pow(p, static_cast<double>(std::max(1u, max_retries)));
}

}  // namespace vulcan::mig

// Page shadowing (borrowed from Nomad, used by Vulcan's demotion path,
// §3.5): when a page is promoted to the fast tier, its old slow-tier frame
// is retained as a shadow copy instead of being freed. As long as the fast
// copy stays clean, a later demotion is a pure remap — no copy, no thrash.
// A write to a shadowed page invalidates the shadow (the copies diverged).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "mem/topology.hpp"
#include "vm/types.hpp"

namespace vulcan::mig {

class ShadowRegistry {
 public:
  struct Stats {
    std::uint64_t installed = 0;
    std::uint64_t invalidated = 0;
    std::uint64_t consumed = 0;  ///< demotions satisfied by remap
    std::uint64_t evicted = 0;   ///< dropped to reclaim slow-tier frames
  };

  explicit ShadowRegistry(mem::Topology& topo) : topo_(&topo) {}
  ~ShadowRegistry() { clear(); }
  ShadowRegistry(const ShadowRegistry&) = delete;
  ShadowRegistry& operator=(const ShadowRegistry&) = delete;

  /// Install `slow_pfn` as the shadow of `vpn`. Takes ownership of the
  /// frame. Replaces (and frees) any existing shadow.
  void install(vm::Vpn vpn, mem::Pfn slow_pfn) {
    invalidate(vpn);
    shadows_.emplace(vpn, slow_pfn);
    ++stats_.installed;
  }

  /// Does `vpn` have a live shadow?
  bool has(vm::Vpn vpn) const { return shadows_.contains(vpn); }

  std::optional<mem::Pfn> peek(vm::Vpn vpn) const {
    const auto it = shadows_.find(vpn);
    return it == shadows_.end() ? std::nullopt
                                : std::optional<mem::Pfn>(it->second);
  }

  /// Consume the shadow for a remap-demotion: ownership of the frame
  /// transfers to the caller (who remaps the page onto it).
  std::optional<mem::Pfn> consume(vm::Vpn vpn) {
    const auto it = shadows_.find(vpn);
    if (it == shadows_.end()) return std::nullopt;
    const mem::Pfn pfn = it->second;
    shadows_.erase(it);
    ++stats_.consumed;
    return pfn;
  }

  /// Drop the shadow because the fast copy was written (divergence).
  /// Hot path: the write hook calls this for every simulated write, and
  /// most epochs hold no shadows at all — skip the hash probe outright.
  void invalidate(vm::Vpn vpn) {
    if (shadows_.empty()) return;
    const auto it = shadows_.find(vpn);
    if (it == shadows_.end()) return;
    topo_->allocator(mem::tier_of(it->second)).free(it->second);
    shadows_.erase(it);
    ++stats_.invalidated;
  }

  /// Free every shadow (used on teardown and under slow-tier pressure).
  void clear() {
    for (const auto& [vpn, pfn] : shadows_) {
      topo_->allocator(mem::tier_of(pfn)).free(pfn);
      ++stats_.evicted;
    }
    shadows_.clear();
  }

  std::size_t size() const { return shadows_.size(); }
  const Stats& stats() const { return stats_; }

  /// Visit every live shadow as (vpn, pfn). Iteration order is the hash
  /// map's — use only for order-independent aggregation (audits).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [vpn, pfn] : shadows_) fn(vpn, pfn);
  }

  /// Live shadow frames currently held in `tier` (frame-conservation
  /// audits: allocator occupancy = mapped pages + shadows).
  std::uint64_t count_in_tier(mem::TierId tier) const {
    std::uint64_t n = 0;
    for (const auto& [vpn, pfn] : shadows_) n += mem::tier_of(pfn) == tier;
    return n;
  }

 private:
  mem::Topology* topo_;
  std::unordered_map<vm::Vpn, mem::Pfn> shadows_;
  Stats stats_;
};

}  // namespace vulcan::mig

// Migration mechanism cost composition: the five phases of §2.1's
// mechanism description (kernel trap, PTE lock/unmap, TLB shootdown via
// IPIs, content copy, PTE remap), with Vulcan's two mechanism-level
// optimisations as switches:
//
//   optimized_prep       drop the cross-CPU lru_add_drain_all() broadcast
//                        (workload-dependent migration, §3.2)
//   targeted_shootdown   shoot only the sharer set proven by per-thread
//                        page tables instead of every process core (§3.4)
//
// This class is pure cost arithmetic over the calibrated CostModel; the
// Migrator pairs it with real page-table/TLB state updates.
#pragma once

#include <algorithm>
#include <array>

#include "obs/scope.hpp"
#include "sim/cost_model.hpp"

namespace vulcan::mig {

struct MechanismOptions {
  bool optimized_prep = false;
  bool targeted_shootdown = false;
  /// Online CPUs participating in baseline preparation (lru_add_drain_all
  /// broadcasts to ALL online CPUs, not just the process's).
  unsigned online_cpus = 32;
};

/// Per-phase cycle breakdown of one migration operation.
struct PhaseBreakdown {
  sim::Cycles prep = 0;
  sim::Cycles unmap = 0;
  sim::Cycles shootdown = 0;
  sim::Cycles copy = 0;
  sim::Cycles remap = 0;

  sim::Cycles total() const { return prep + unmap + shootdown + copy + remap; }
  double prep_share() const {
    const auto t = total();
    return t ? static_cast<double>(prep) / static_cast<double>(t) : 0.0;
  }
  double shootdown_share() const {
    const auto t = total();
    return t ? static_cast<double>(shootdown) / static_cast<double>(t) : 0.0;
  }
};

class MigrationMechanism {
 public:
  MigrationMechanism(const sim::CostModel& cost, MechanismOptions opts)
      : cost_(&cost), opts_(opts) {}

  const MechanismOptions& options() const { return opts_; }
  const sim::CostModel& cost_model() const { return *cost_; }

  /// Attach observability: every single_page()/batch() composition records
  /// its per-phase cycles as `<scope>.<phase>_cycles` counters (plus ops /
  /// pages totals) and emits mig_phase_begin/end trace events.
  void set_obs(obs::Scope scope) {
    obs_ = std::move(scope);
    for (std::size_t p = 0; p < kPhases; ++p) {
      phase_cycles_[p] = &obs_.counter(
          std::string(obs::mig_phase_name(static_cast<obs::MigPhase>(p))) +
          "_cycles");
    }
    ops_ = &obs_.counter("operations");
    pages_ = &obs_.counter("pages");
  }

  sim::Cycles prep_cost() const {
    return opts_.optimized_prep ? cost_->prep_optimized(opts_.online_cpus)
                                : cost_->prep_baseline(opts_.online_cpus);
  }

  /// Cold single-page migration (the Fig. 2 microbenchmark): one page whose
  /// translation may be cached by `process_remote_cores` other cores.
  /// `sharer_remote_cores` is the (smaller) set per-thread tables prove.
  PhaseBreakdown single_page(unsigned process_remote_cores,
                             unsigned sharer_remote_cores) const {
    PhaseBreakdown b;
    b.prep = prep_cost();
    b.unmap = cost_->unmap(1);
    const unsigned targets = opts_.targeted_shootdown
                                 ? std::min(sharer_remote_cores,
                                            process_remote_cores)
                                 : process_remote_cores;
    b.shootdown = cost_->shootdown_cold(targets);
    b.copy = cost_->copy_single();
    b.remap = cost_->remap(1);
    record(b, 1);
    return b;
  }

  /// Synchronous batched migration of `pages` pages (the Fig. 7 regime:
  /// migrate_pages() on live mappings). Unmap/remap pay the cold per-page
  /// cost; shootdowns pay the cold broadcast per page up to the kernel's
  /// flush ceiling (tlb_single_page_flush_ceiling), beyond which flushes
  /// batch (TTU_BATCH_FLUSH) and the overlapped per-page cost applies.
  static constexpr std::uint64_t kFlushCeiling = 33;

  PhaseBreakdown batch(std::uint64_t pages, unsigned process_remote_cores,
                       unsigned avg_sharer_remote_cores) const {
    PhaseBreakdown b;
    b.prep = prep_cost();
    b.unmap = cost_->unmap(pages);
    const unsigned targets = opts_.targeted_shootdown
                                 ? std::min(avg_sharer_remote_cores,
                                            process_remote_cores)
                                 : process_remote_cores;
    const std::uint64_t cold_pages = std::min(pages, kFlushCeiling);
    b.shootdown = cold_pages * cost_->shootdown_cold(targets);
    if (pages > cold_pages) {
      b.shootdown += cost_->shootdown_batched(pages - cold_pages, targets);
    }
    b.copy = cost_->copy_batched(pages);
    b.remap = cost_->remap(pages);
    record(b, pages);
    return b;
  }

 private:
  static constexpr std::size_t kPhases = 5;

  /// Account one composed operation into the attached scope. Const because
  /// cost composition is logically pure; only the external sinks mutate.
  void record(const PhaseBreakdown& b, std::uint64_t pages) const {
    if (!obs_.active()) return;
    const std::array<sim::Cycles, kPhases> cycles{b.prep, b.unmap,
                                                  b.shootdown, b.copy,
                                                  b.remap};
    for (std::size_t p = 0; p < kPhases; ++p) {
      phase_cycles_[p]->inc(cycles[p]);
      obs_.event(obs::EventKind::kMigPhaseBegin, p, pages);
      obs_.event(obs::EventKind::kMigPhaseEnd, p, cycles[p]);
    }
    ops_->inc();
    pages_->inc(pages);
  }

  const sim::CostModel* cost_;
  MechanismOptions opts_;
  obs::Scope obs_;
  std::array<obs::Counter*, kPhases> phase_cycles_{
      &obs::detail::dummy_counter, &obs::detail::dummy_counter,
      &obs::detail::dummy_counter, &obs::detail::dummy_counter,
      &obs::detail::dummy_counter};
  obs::Counter* ops_ = &obs::detail::dummy_counter;
  obs::Counter* pages_ = &obs::detail::dummy_counter;
};

}  // namespace vulcan::mig

// The Migrator executes policy-issued MigrationRequests against one
// process's address space: it allocates destination frames, pays the
// mechanism costs (split by attribution: synchronous work stalls the
// application, asynchronous work burns migration-thread cycles), performs
// the remaps and TLB shootdowns, and maintains shadow copies.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "mig/admission.hpp"
#include "mig/copy_engine.hpp"
#include "mig/mechanism.hpp"
#include "mig/migration.hpp"
#include "mig/shadow.hpp"
#include "sim/rng.hpp"
#include "vm/address_space.hpp"
#include "vm/shootdown.hpp"

namespace vulcan::obs {
class ProvenanceLedger;
}

namespace vulcan::mig {

class Migrator {
 public:
  struct Config {
    MechanismOptions mechanism;
    /// Cores running the process's threads, indexed by thread id modulo
    /// size (thread pinning).
    std::vector<vm::CoreId> process_cores;
    /// Core the migration daemon/thread runs on (shootdown initiator for
    /// async work).
    vm::CoreId daemon_core = 0;
    /// Retain slow-tier shadow copies on promotion (Nomad / Vulcan).
    bool shadowing = false;
    /// Offload page copies to a DMA engine (HeMem-style): the CPU pays
    /// descriptor setup only.
    bool dma_copy = false;
    unsigned async_max_retries = 3;
    /// Cost of splitting a THP before migrating one of its base pages.
    sim::Cycles huge_split_cycles = 20'000;
  };

  Migrator(vm::AddressSpace& as, mem::Topology& topo,
           vm::ShootdownController& shootdowns, const sim::CostModel& cost,
           Config config);

  /// Execute a batch of requests. Returns aggregated stats; cumulative
  /// stats are also kept (see totals()).
  MigrationStats execute(std::span<const MigrationRequest> requests,
                         sim::Rng& rng);

  /// Notify a write to `vpn` (invalidates any shadow: copies diverged).
  void on_write(vm::Vpn vpn) {
    if (config_.shadowing) shadows_.invalidate(vpn);
  }

  ShadowRegistry& shadows() { return shadows_; }
  const ShadowRegistry& shadows() const { return shadows_; }
  const MigrationMechanism& mechanism() const { return mechanism_; }
  const MigrationStats& totals() const { return totals_; }
  const Config& config() const { return config_; }

  /// Attach observability: per-phase cycle counters + begin/end trace
  /// events for every executed request, and outcome counters.
  void set_obs(obs::Scope scope);

  /// Attach the decision provenance ledger: every executed request with a
  /// provenance id gets its outcome linked, every remap records a per-page
  /// tier transition, and the abort{reason=...} counters come live. `app`
  /// is the ledger's workload index for this process. Call after set_obs
  /// (the counters bind against the attached scope).
  void set_provenance(obs::ProvenanceLedger* ledger, std::int32_t app);

  /// Attach the admission controller (shared across workloads, owned by
  /// the runtime). execute() then scores every request before the pipeline
  /// and drops vetoed ones without paying any mechanism cost or consuming
  /// RNG. nullptr (the default) leaves every code path byte-identical to
  /// an admission-free build.
  void set_admission(AdmissionController* controller) {
    admission_ = controller;
  }

  /// Runtime toggle for targeted shootdowns — the §3.6 adaptive
  /// replication knob (per-thread tables can be consulted or ignored
  /// per-epoch based on measured benefit).
  void set_targeted_shootdown(bool on) {
    config_.mechanism.targeted_shootdown = on;
  }

  vm::CoreId core_of(vm::ThreadId thread) const {
    return config_.process_cores.empty()
               ? config_.daemon_core
               : config_.process_cores[thread % config_.process_cores.size()];
  }

 private:
  struct Charge {
    sim::Cycles* bucket;  ///< &stats.stall_cycles or &stats.daemon_cycles
  };

  bool execute_one(const MigrationRequest& req, sim::Rng& rng,
                   MigrationStats& stats);
  bool execute_chunk(const MigrationRequest& req, sim::Rng& rng,
                     MigrationStats& stats);
  /// Drop `req`: the unified abort report (one mig_abort trace event + the
  /// abort{reason=...} counter, both emitted only while a ledger is
  /// attached so the default-config digests stay pinned) shared by the
  /// five-phase and shadow paths, and the reason the outcome linker
  /// records. Always returns false so call sites can
  /// `return abort_request(...)`.
  bool abort_request(const MigrationRequest& req, obs::MigAbortReason reason);
  /// Assemble the controller's view of `req`: direction, path (shadow /
  /// DMA / chunk), the live sharer set the shootdown would IPI, and the
  /// tiers' allocation pressure.
  AdmissionInputs admission_inputs(const MigrationRequest& req);
  /// Report a vetoed request: mig_abort trace event and — satellite of the
  /// no-pending-rows contract — finalize its linked DecisionRecord with
  /// the veto reason (both ledger-gated, like abort_request).
  void veto_request(const MigrationRequest& req, obs::MigAbortReason reason);
  /// Record a page's tier transition in the ledger (no-op when detached).
  void record_move(vm::Vpn vpn, mem::Pfn old_pfn, mem::TierId to,
                   std::uint64_t cause);
  /// Join `req` with what executing it did (deltas of `stats` against
  /// `before`) and link the outcome into the ledger.
  void link_outcome(const MigrationRequest& req, bool executed,
                    const MigrationStats& before, const MigrationStats& stats);
  // The target-set helpers fill `targets_scratch_` and return a view of
  // it: migration waves issue thousands of shootdowns per epoch, so a
  // fresh vector per request was measurable allocator churn. The span is
  // valid until the next helper call; each call site consumes its set
  // before requesting another.
  /// Remote-core target set for a request's shootdown.
  std::span<const vm::CoreId> shootdown_targets(const MigrationRequest& req,
                                                vm::CoreId initiator);
  /// Every process core except the initiator (the broadcast fallback).
  std::span<const vm::CoreId> broadcast_targets(vm::CoreId initiator);
  /// Target set for a batched chunk move: huge-mapped chunks broadcast
  /// (any core that touched any page of the chunk may cache the 2 MB
  /// entry), otherwise the union of the moved pages' exclusive-owner
  /// cores — falling back to broadcast when any moved page is shared.
  std::span<const vm::CoreId> chunk_shootdown_targets(
      std::span<const vm::Vpn> moved, bool was_huge, vm::CoreId initiator);
  /// Account `cycles` of work in `phase` against the attached scope and
  /// return the cycles (so call sites charge their bucket in one line).
  /// By default also records a timeline span advancing the cursor by
  /// `cycles`; pass `with_span = false` when the call site wraps the work
  /// in its own span (the shootdown phase, whose cursor is advanced by the
  /// controller's nested span).
  sim::Cycles phase(obs::MigPhase p, std::uint64_t pages, sim::Cycles cycles,
                    bool with_span = true);

  vm::AddressSpace* as_;
  mem::Topology* topo_;
  vm::ShootdownController* shootdowns_;
  MigrationMechanism mechanism_;
  Config config_;
  ShadowRegistry shadows_;
  MigrationStats totals_;
  // Reused per-request scratch (see the target-set helpers above and the
  // chunk move loop); capacity sticks at the high-water mark.
  std::vector<vm::CoreId> targets_scratch_;
  std::vector<vm::Vpn> moved_scratch_;
  std::vector<MigrationRequest> admitted_scratch_;
  AdmissionController* admission_ = nullptr;
  obs::Scope obs_;
  std::array<obs::Counter*, 5> phase_cycles_{
      &obs::detail::dummy_counter, &obs::detail::dummy_counter,
      &obs::detail::dummy_counter, &obs::detail::dummy_counter,
      &obs::detail::dummy_counter};
  obs::Counter* obs_migrated_ = &obs::detail::dummy_counter;
  obs::Counter* obs_failed_ = &obs::detail::dummy_counter;
  obs::Counter* obs_shadow_remaps_ = &obs::detail::dummy_counter;
  obs::Counter* obs_bytes_ = &obs::detail::dummy_counter;
  // Provenance attachment (nullptr / dummies by default, so the default
  // configuration records nothing and registry snapshots are unchanged).
  obs::ProvenanceLedger* ledger_ = nullptr;
  std::int32_t prov_app_ = -1;
  std::array<obs::Counter*, 4> abort_counts_{
      &obs::detail::dummy_counter, &obs::detail::dummy_counter,
      &obs::detail::dummy_counter, &obs::detail::dummy_counter};
  // Per-request scratch the outcome linker reads after execute_one.
  obs::MigAbortReason last_abort_ = obs::MigAbortReason::kNone;
  bool last_partial_ = false;
};

}  // namespace vulcan::mig

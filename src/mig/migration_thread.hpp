// Per-application migration thread (§3.2): Vulcan decouples migration from
// the kernel by giving every managed application dedicated migration
// threads fed through shared-memory queues. Policies enqueue requests; each
// epoch the thread drains as many as the inter-tier link budget allows.
#pragma once

#include <deque>

#include "mig/migrator.hpp"

namespace vulcan::mig {

class MigrationThread {
 public:
  explicit MigrationThread(Migrator& migrator) : migrator_(&migrator) {}

  void enqueue(const MigrationRequest& req) { queue_.push_back(req); }

  /// Push to the front (urgent work, e.g. watermark-driven demotions).
  void enqueue_urgent(const MigrationRequest& req) {
    queue_.push_front(req);
  }

  std::size_t backlog() const { return queue_.size(); }
  void clear_backlog() { queue_.clear(); }

  /// Execute up to `page_budget` queued requests (the epoch's share of
  /// inter-tier link bandwidth). Returns the aggregated stats.
  MigrationStats run_epoch(std::uint64_t page_budget, sim::Rng& rng) {
    std::vector<MigrationRequest> batch;
    batch.reserve(std::min<std::size_t>(page_budget, queue_.size()));
    while (!queue_.empty() && batch.size() < page_budget) {
      batch.push_back(queue_.front());
      queue_.pop_front();
    }
    return migrator_->execute(batch, rng);
  }

  Migrator& migrator() { return *migrator_; }

 private:
  Migrator* migrator_;
  std::deque<MigrationRequest> queue_;
};

}  // namespace vulcan::mig

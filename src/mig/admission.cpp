#include "mig/admission.hpp"

namespace vulcan::mig {

namespace {

/// Index into veto_reason_counts_ for a veto reason.
std::size_t veto_index(obs::MigAbortReason r) {
  switch (r) {
    case obs::MigAbortReason::kVetoBenefit: return 0;
    case obs::MigAbortReason::kVetoCost: return 1;
    case obs::MigAbortReason::kVetoPressure: return 2;
    default: return 0;
  }
}

}  // namespace

void AdmissionController::set_obs(obs::Scope scope, std::string policy) {
  obs_ = std::move(scope);
  admitted_count_ = &obs_.counter("admitted");
  admitted_policy_count_ = &obs_.counter("admitted{policy=" + policy + "}");
  vetoed_count_ = &obs_.counter("vetoed");
  static constexpr obs::MigAbortReason kVetoes[kVetoReasons] = {
      obs::MigAbortReason::kVetoBenefit, obs::MigAbortReason::kVetoCost,
      obs::MigAbortReason::kVetoPressure};
  for (const obs::MigAbortReason r : kVetoes) {
    veto_reason_counts_[veto_index(r)] = &obs_.counter(
        "vetoed{policy=" + policy + ",reason=" +
        obs::mig_abort_reason_name(r) + "}");
  }
}

sim::Cycles AdmissionController::predict_cost(
    const AdmissionInputs& in) const {
  // Mirror the mechanism's per-request composition (prep excluded: it is
  // charged once per execute() batch). The shadow path skips the copy
  // phase entirely — Nomad's transactional insight, costed as such.
  sim::Cycles cost = 0;
  if (in.pages <= 1) {
    cost += cost_.unmap(1);
    cost += cost_.shootdown_cold(in.predicted_ipis);
    if (!in.shadow_path) {
      cost += in.dma_copy ? cost_.params().dma_setup_cycles
                          : cost_.copy_single();
    }
    cost += cost_.remap(1);
    return cost;
  }
  // Whole-chunk moves batch: cold per-page shootdowns up to the kernel's
  // flush ceiling, overlapped flushes beyond it (mechanism.hpp).
  constexpr std::uint64_t kFlushCeiling = 33;
  cost += cost_.unmap(in.pages);
  const std::uint64_t cold = in.pages < kFlushCeiling ? in.pages
                                                      : kFlushCeiling;
  cost += cold * cost_.shootdown_cold(in.predicted_ipis);
  if (in.pages > cold) {
    cost += cost_.shootdown_batched(in.pages - cold, in.predicted_ipis);
  }
  if (!in.shadow_path) {
    cost += in.dma_copy
                ? in.pages * cost_.params().dma_setup_cycles
                : cost_.copy_batched(in.pages);
  }
  cost += cost_.remap(in.pages);
  return cost;
}

AdmissionVerdict AdmissionController::assess(const AdmissionInputs& in) {
  AdmissionVerdict v;
  v.predicted_cost = predict_cost(in);
  v.benefit_cycles = in.predicted_benefit * spec_.benefit_per_heat *
                     static_cast<double>(in.pages ? in.pages : 1);

  const bool relief = !in.promotion &&
                      in.source_free_fraction < spec_.relief_floor;
  if (!relief) {
    if (in.promotion && in.dest_free_fraction < spec_.pressure_floor) {
      v.admitted = false;
      v.reason = obs::MigAbortReason::kVetoPressure;
    } else if (in.predicted_benefit <= 0.0) {
      v.admitted = false;
      v.reason = obs::MigAbortReason::kVetoBenefit;
    } else if (v.benefit_cycles <
               spec_.margin * static_cast<double>(v.predicted_cost)) {
      v.admitted = false;
      v.reason = obs::MigAbortReason::kVetoCost;
    }
  }

  if (v.admitted) {
    ++admitted_total_;
    admitted_count_->inc();
    admitted_policy_count_->inc();
  } else {
    ++vetoed_total_;
    vetoed_count_->inc();
    veto_reason_counts_[veto_index(v.reason)]->inc();
  }
  return v;
}

}  // namespace vulcan::mig

#include "mig/migrator.hpp"

#include <algorithm>
#include <cassert>

namespace vulcan::mig {

Migrator::Migrator(vm::AddressSpace& as, mem::Topology& topo,
                   vm::ShootdownController& shootdowns,
                   const sim::CostModel& cost, Config config)
    : as_(&as),
      topo_(&topo),
      shootdowns_(&shootdowns),
      mechanism_(cost, config.mechanism),
      config_(std::move(config)),
      shadows_(topo) {}

void Migrator::set_obs(obs::Scope scope) {
  obs_ = std::move(scope);
  for (std::size_t p = 0; p < phase_cycles_.size(); ++p) {
    phase_cycles_[p] = &obs_.counter(
        std::string(obs::mig_phase_name(static_cast<obs::MigPhase>(p))) +
        "_cycles");
  }
  obs_migrated_ = &obs_.counter("pages_migrated");
  obs_failed_ = &obs_.counter("pages_failed");
  obs_shadow_remaps_ = &obs_.counter("shadow_remaps");
  obs_bytes_ = &obs_.counter("bytes_copied");
}

sim::Cycles Migrator::phase(obs::MigPhase p, std::uint64_t pages,
                            sim::Cycles cycles, bool with_span) {
  phase_cycles_[static_cast<std::size_t>(p)]->inc(cycles);
  if (obs_.tracing()) {
    obs_.event(obs::EventKind::kMigPhaseBegin,
               static_cast<std::uint64_t>(p), pages);
    obs_.event(obs::EventKind::kMigPhaseEnd, static_cast<std::uint64_t>(p),
               cycles);
  }
  if (with_span) {
    obs_.span(obs::span_kind_for(p), static_cast<double>(pages))
        .close(cycles);
  }
  return cycles;
}

std::vector<vm::CoreId> Migrator::shootdown_targets(
    const MigrationRequest& req, vm::CoreId initiator) const {
  std::vector<vm::CoreId> targets;
  const bool targeted = config_.mechanism.targeted_shootdown;
  if (targeted && !req.shared) {
    // Per-thread tables prove a single owner: one core at most.
    const vm::CoreId owner_core = core_of(req.owner);
    if (owner_core != initiator) targets.push_back(owner_core);
    return targets;
  }
  // Shared page (or no ownership knowledge): every process core.
  targets.reserve(config_.process_cores.size());
  for (const vm::CoreId c : config_.process_cores) {
    if (c != initiator &&
        std::find(targets.begin(), targets.end(), c) == targets.end()) {
      targets.push_back(c);
    }
  }
  return targets;
}

bool Migrator::execute_chunk(const MigrationRequest& req, sim::Rng& rng,
                             MigrationStats& stats) {
  (void)rng;
  const sim::CostModel& cost = mechanism_.cost_model();
  const bool sync = req.mode == CopyMode::kSync;
  sim::Cycles& bucket = sync ? stats.stall_cycles : stats.daemon_cycles;
  const vm::CoreId initiator =
      sync ? core_of(req.owner) : config_.daemon_core;
  const auto targets = shootdown_targets(req, initiator);
  obs::ScopedSpan op_span =
      obs_.span(obs::SpanKind::kMigrationOp,
                static_cast<double>(sim::kPagesPerHuge), req.to, req.owner);

  const vm::Vpn base = as_->chunk_base(req.vpn);
  std::vector<vm::Vpn> moved;
  moved.reserve(sim::kPagesPerHuge);
  bool complete = true;
  for (std::uint64_t i = 0; i < sim::kPagesPerHuge; ++i) {
    const vm::Vpn vpn = base + i;
    const vm::Pte pte = as_->tables().get(vpn);
    if (!pte.present() || mem::tier_of(pte.pfn()) == req.to) continue;
    auto dest = topo_->allocator(req.to).allocate();
    if (!dest) {
      complete = false;  // destination exhausted mid-chunk: partial move
      break;
    }
    const mem::Pfn old = as_->remap(vpn, *dest);
    if (config_.shadowing) shadows_.invalidate(vpn);
    topo_->allocator(mem::tier_of(old)).free(old);
    moved.push_back(vpn);
  }
  if (moved.empty()) return false;
  if (!complete &&
      as_->chunk_state(req.vpn) == vm::AddressSpace::ChunkState::kHuge) {
    // A huge mapping cannot straddle tiers: a partial move forces a split.
    as_->split_chunk(req.vpn);
    bucket += config_.huge_split_cycles;
  }

  // Batched mechanics: one flush round for the whole chunk, amortised
  // per-page unmap/copy/remap.
  bucket += phase(obs::MigPhase::kUnmap, moved.size(),
                  cost.unmap_batched(moved.size()));
  {
    // The shootdown phase span wraps the controller call so the IPI-round
    // span it records nests inside; the controller advances the cursor.
    obs::ScopedSpan sd_span =
        obs_.span(obs::span_kind_for(obs::MigPhase::kShootdown),
                  static_cast<double>(moved.size()), req.to);
    const sim::Cycles sd_cost =
        shootdowns_->shoot_batch(initiator, targets, as_->pid(), moved);
    bucket += phase(obs::MigPhase::kShootdown, moved.size(), sd_cost,
                    /*with_span=*/false);
    stats.shootdown_ipis += targets.size();
  }
  bucket += phase(obs::MigPhase::kCopy, moved.size(),
                  config_.dma_copy
                      ? moved.size() * cost.params().dma_setup_cycles
                      : cost.copy_batched(moved.size()));
  bucket += phase(obs::MigPhase::kRemap, moved.size(),
                  cost.remap_batched(moved.size()));
  stats.bytes_copied += moved.size() * sim::kPageSize;
  stats.migrated += moved.size();

  // (Re)establish the 2 MB mapping for TLB coverage; collapse_chunk
  // verifies the whole chunk is mapped and co-resident, so a partial move
  // (destination exhausted) safely stays base-paged.
  as_->collapse_chunk(req.vpn);
  return true;
}

bool Migrator::execute_one(const MigrationRequest& req, sim::Rng& rng,
                           MigrationStats& stats) {
  if (req.whole_chunk) return execute_chunk(req, rng, stats);

  const sim::CostModel& cost = mechanism_.cost_model();
  const bool sync = req.mode == CopyMode::kSync;
  sim::Cycles& bucket = sync ? stats.stall_cycles : stats.daemon_cycles;
  const vm::CoreId initiator =
      sync ? core_of(req.owner) : config_.daemon_core;

  const vm::Pte pte = as_->tables().get(req.vpn);
  if (!pte.present() || mem::tier_of(pte.pfn()) == req.to) return false;

  obs::ScopedSpan op_span = obs_.span(obs::SpanKind::kMigrationOp,
                                      /*arg=*/1.0, req.to, req.owner);

  // THP split precedes any base-page migration of a huge-mapped chunk.
  if (as_->is_huge(req.vpn)) {
    as_->split_chunk(req.vpn);
    bucket += config_.huge_split_cycles;
    op_span.advance(config_.huge_split_cycles);
  }

  const auto targets = shootdown_targets(req, initiator);
  const bool demotion = req.to != mem::kFastTier;
  const bool dirty = pte.dirty();

  // Cheap demotion path: a clean page with a live shadow is just remapped
  // back onto its slow-tier copy — no content copy at all.
  if (demotion && !dirty && config_.shadowing) {
    if (auto shadow = shadows_.consume(req.vpn)) {
      bucket += phase(obs::MigPhase::kUnmap, 1, cost.unmap(1));
      {
        obs::ScopedSpan sd_span =
            obs_.span(obs::span_kind_for(obs::MigPhase::kShootdown),
                      /*arg=*/1.0, req.to);
        bucket += phase(obs::MigPhase::kShootdown, 1,
                        shootdowns_->shoot_single(initiator, targets,
                                                  as_->pid(), req.vpn),
                        /*with_span=*/false);
        stats.shootdown_ipis += targets.size();
      }
      const mem::Pfn old = as_->remap(req.vpn, *shadow);
      topo_->allocator(mem::tier_of(old)).free(old);
      bucket += phase(obs::MigPhase::kRemap, 1, cost.remap(1));
      ++stats.shadow_remaps;
      ++stats.migrated;
      return true;
    }
  }

  auto dest = topo_->allocator(req.to).allocate();
  if (!dest) return false;  // destination tier full: policy must make room

  // Async copies race application writes; write-intensive pages may abort.
  if (!sync) {
    const double p_success = async_success_probability(
        req.write_intensive, config_.async_max_retries);
    // Expected extra copies before resolution (success or abort).
    const double p_dirty = 1.0 - p_success;
    if (p_dirty > 0.0) {
      const unsigned extra = static_cast<unsigned>(
          rng.uniform() * config_.async_max_retries * (1.0 - p_success));
      stats.retries += extra;
      bucket += phase(obs::MigPhase::kCopy, extra,
                      extra * cost.copy_single());
      stats.bytes_copied += extra * sim::kPageSize;
    }
    if (!rng.chance(p_success)) {
      topo_->allocator(req.to).free(*dest);
      ++stats.failed;
      return false;
    }
  }

  bucket += phase(obs::MigPhase::kUnmap, 1, cost.unmap(1));
  {
    obs::ScopedSpan sd_span =
        obs_.span(obs::span_kind_for(obs::MigPhase::kShootdown),
                  /*arg=*/1.0, req.to);
    bucket += phase(obs::MigPhase::kShootdown, 1,
                    shootdowns_->shoot_single(initiator, targets, as_->pid(),
                                              req.vpn),
                    /*with_span=*/false);
    stats.shootdown_ipis += targets.size();
  }
  // HeMem-style DMA offload: the engine streams the page while the CPU
  // only pays descriptor setup; otherwise the CPU performs the copy.
  bucket += phase(obs::MigPhase::kCopy, 1,
                  config_.dma_copy ? cost.params().dma_setup_cycles
                                   : cost.copy_single());
  stats.bytes_copied += sim::kPageSize;
  const mem::Pfn old = as_->remap(req.vpn, *dest);
  bucket += phase(obs::MigPhase::kRemap, 1, cost.remap(1));
  if (!req.shared) ++stats.private_migrated;

  const bool promotion_from_slow =
      req.to == mem::kFastTier && mem::tier_of(old) != mem::kFastTier;
  if (config_.shadowing && promotion_from_slow && !dirty) {
    shadows_.install(req.vpn, old);  // registry owns the frame now
  } else {
    if (config_.shadowing) shadows_.invalidate(req.vpn);
    topo_->allocator(mem::tier_of(old)).free(old);
  }
  ++stats.migrated;
  return true;
}

MigrationStats Migrator::execute(std::span<const MigrationRequest> requests,
                                 sim::Rng& rng) {
  MigrationStats stats;
  if (requests.empty()) return stats;

  bool any_sync = false, any_async = false;
  for (const auto& r : requests) {
    (r.mode == CopyMode::kSync ? any_sync : any_async) = true;
  }
  // Migration preparation is paid once per migrate_pages() invocation; sync
  // and async requests travel in separate invocations (app context vs the
  // migration thread).
  if (any_sync) {
    stats.stall_cycles +=
        phase(obs::MigPhase::kPrep, requests.size(), mechanism_.prep_cost());
  }
  if (any_async) {
    stats.daemon_cycles +=
        phase(obs::MigPhase::kPrep, requests.size(), mechanism_.prep_cost());
  }

  for (const auto& req : requests) {
    ++stats.attempted;
    execute_one(req, rng, stats);
  }
  totals_ += stats;
  obs_migrated_->inc(stats.migrated);
  obs_failed_->inc(stats.failed);
  obs_shadow_remaps_->inc(stats.shadow_remaps);
  obs_bytes_->inc(stats.bytes_copied);
  return stats;
}

}  // namespace vulcan::mig

#include "mig/migrator.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "obs/provenance.hpp"
#include "vm/mmu.hpp"

namespace vulcan::mig {

Migrator::Migrator(vm::AddressSpace& as, mem::Topology& topo,
                   vm::ShootdownController& shootdowns,
                   const sim::CostModel& cost, Config config)
    : as_(&as),
      topo_(&topo),
      shootdowns_(&shootdowns),
      mechanism_(cost, config.mechanism),
      config_(std::move(config)),
      shadows_(topo) {}

void Migrator::set_obs(obs::Scope scope) {
  obs_ = std::move(scope);
  for (std::size_t p = 0; p < phase_cycles_.size(); ++p) {
    phase_cycles_[p] = &obs_.counter(
        std::string(obs::mig_phase_name(static_cast<obs::MigPhase>(p))) +
        "_cycles");
  }
  obs_migrated_ = &obs_.counter("pages_migrated");
  obs_failed_ = &obs_.counter("pages_failed");
  obs_shadow_remaps_ = &obs_.counter("shadow_remaps");
  obs_bytes_ = &obs_.counter("bytes_copied");
}

void Migrator::set_provenance(obs::ProvenanceLedger* ledger,
                              std::int32_t app) {
  ledger_ = ledger && ledger->enabled() ? ledger : nullptr;
  prov_app_ = app;
  if (!ledger_) return;
  // abort{reason=...} registry counters only exist with provenance on —
  // the default registry snapshot (and so the pinned fuzz digests) must
  // stay byte-identical. kNone is never counted.
  for (std::size_t r = 1; r < abort_counts_.size(); ++r) {
    abort_counts_[r] = &obs_.counter(
        std::string("abort{reason=") +
        obs::mig_abort_reason_name(static_cast<obs::MigAbortReason>(r)) +
        "}");
  }
}

bool Migrator::abort_request(const MigrationRequest& req,
                             obs::MigAbortReason reason) {
  last_abort_ = reason;
  // Both abort reports are provenance-gated. The counters obviously are
  // (new registry keys), but so are the trace events: extra events roll
  // older ones out of the bounded ring and bump obs.trace.dropped_events,
  // which sits in the registry snapshot the pinned fuzz digests cover.
  if (ledger_) {
    if (obs_.tracing()) {
      obs_.event(obs::EventKind::kMigAbort, static_cast<std::uint64_t>(reason),
                 req.vpn, req.heat);
    }
    abort_counts_[static_cast<std::size_t>(reason)]->inc();
  }
  return false;
}

void Migrator::record_move(vm::Vpn vpn, mem::Pfn old_pfn, mem::TierId to,
                           std::uint64_t cause) {
  if (!ledger_) return;
  ledger_->record_transition(prov_app_, vpn - as_->base_vpn(),
                             static_cast<std::int32_t>(mem::tier_of(old_pfn)),
                             static_cast<std::int32_t>(to), cause);
}

void Migrator::link_outcome(const MigrationRequest& req, bool executed,
                            const MigrationStats& before,
                            const MigrationStats& stats) {
  obs::DecisionOutcome outcome;
  outcome.pages = stats.migrated - before.migrated;
  outcome.shootdown_ipis = stats.shootdown_ipis - before.shootdown_ipis;
  outcome.latency_cycles = (stats.stall_cycles - before.stall_cycles) +
                           (stats.daemon_cycles - before.daemon_cycles);
  if (executed) {
    outcome.status = stats.shadow_remaps > before.shadow_remaps
                         ? obs::DecisionStatus::kShadowRemap
                     : last_partial_ ? obs::DecisionStatus::kPartialChunk
                                     : obs::DecisionStatus::kCompleted;
  } else {
    outcome.status = obs::DecisionStatus::kAborted;
    outcome.abort_reason = last_abort_;
  }
  // Final residency of the decision's own page — a partial chunk move may
  // have stopped short of it, so read the live PTE rather than trusting
  // req.to.
  vm::Mmu* const mmu = shootdowns_->mmu();
  const vm::Pte pte =
      mmu ? mmu->walk(*as_, req.vpn) : as_->tables().get(req.vpn);
  outcome.final_tier =
      pte.present() ? static_cast<std::int32_t>(mem::tier_of(pte.pfn())) : -1;
  ledger_->link_outcome(req.provenance, outcome);
}

AdmissionInputs Migrator::admission_inputs(const MigrationRequest& req) {
  AdmissionInputs in;
  const bool sync = req.mode == CopyMode::kSync;
  const vm::CoreId initiator =
      sync ? core_of(req.owner) : config_.daemon_core;
  vm::Mmu* const mmu = shootdowns_->mmu();
  const vm::Pte pte =
      mmu ? mmu->walk(*as_, req.vpn) : as_->tables().get(req.vpn);
  const std::int32_t from =
      pte.present() ? static_cast<std::int32_t>(mem::tier_of(pte.pfn())) : -1;
  in.promotion = from >= 0 ? static_cast<std::int32_t>(req.to) < from
                           : req.to == mem::kFastTier;
  in.dma_copy = config_.dma_copy;
  in.predicted_benefit = req.predicted_benefit;
  if (req.whole_chunk) {
    in.pages = sim::kPagesPerHuge;
    // Chunk flushes broadcast in the common (huge-mapped or shared) case;
    // size the IPI prediction accordingly.
    in.predicted_ipis =
        static_cast<unsigned>(broadcast_targets(initiator).size());
  } else {
    in.pages = 1;
    in.predicted_ipis =
        static_cast<unsigned>(shootdown_targets(req, initiator).size());
    in.shadow_path = !in.promotion && pte.present() && !pte.dirty() &&
                     config_.shadowing && shadows_.has(req.vpn);
  }
  const mem::FrameAllocator& dest = topo_->allocator(req.to);
  in.dest_free_fraction =
      dest.capacity() ? static_cast<double>(dest.free_pages()) /
                            static_cast<double>(dest.capacity())
                      : 0.0;
  if (from >= 0) {
    const mem::FrameAllocator& src =
        topo_->allocator(static_cast<mem::TierId>(from));
    in.source_free_fraction =
        src.capacity() ? static_cast<double>(src.free_pages()) /
                             static_cast<double>(src.capacity())
                       : 0.0;
  }
  return in;
}

void Migrator::veto_request(const MigrationRequest& req,
                            obs::MigAbortReason reason) {
  // Veto counts live in the controller's adm.* counters; the per-reason
  // reporting here mirrors abort_request's ledger gating so admission-off
  // (and provenance-off) artefacts stay byte-identical.
  if (!ledger_) return;
  if (obs_.tracing()) {
    obs_.event(obs::EventKind::kMigAbort, static_cast<std::uint64_t>(reason),
               req.vpn, req.heat);
  }
  if (req.provenance == 0) return;
  obs::DecisionOutcome outcome;
  outcome.status = obs::DecisionStatus::kVetoed;
  outcome.abort_reason = reason;
  vm::Mmu* const mmu = shootdowns_->mmu();
  const vm::Pte pte =
      mmu ? mmu->walk(*as_, req.vpn) : as_->tables().get(req.vpn);
  outcome.final_tier =
      pte.present() ? static_cast<std::int32_t>(mem::tier_of(pte.pfn())) : -1;
  ledger_->link_outcome(req.provenance, outcome);
}

sim::Cycles Migrator::phase(obs::MigPhase p, std::uint64_t pages,
                            sim::Cycles cycles, bool with_span) {
  phase_cycles_[static_cast<std::size_t>(p)]->inc(cycles);
  if (obs_.tracing()) {
    obs_.event(obs::EventKind::kMigPhaseBegin,
               static_cast<std::uint64_t>(p), pages);
    obs_.event(obs::EventKind::kMigPhaseEnd, static_cast<std::uint64_t>(p),
               cycles);
  }
  if (with_span) {
    obs_.span(obs::span_kind_for(p), static_cast<double>(pages))
        .close(cycles);
  }
  return cycles;
}

std::span<const vm::CoreId> Migrator::broadcast_targets(
    vm::CoreId initiator) {
  std::vector<vm::CoreId>& targets = targets_scratch_;
  targets.clear();
  targets.reserve(config_.process_cores.size());
  for (const vm::CoreId c : config_.process_cores) {
    if (c != initiator &&
        std::find(targets.begin(), targets.end(), c) == targets.end()) {
      targets.push_back(c);
    }
  }
  return targets;
}

std::span<const vm::CoreId> Migrator::shootdown_targets(
    const MigrationRequest& req, vm::CoreId initiator) {
  if (config_.mechanism.targeted_shootdown) {
    // Consult the live PTE, not the plan-time request: requests queued
    // across epochs go stale when another thread touches the page in the
    // meantime (ownership flips to shared), and a targeted flush based on
    // the old owner would leave live entries on the new sharers' cores.
    // Same predicate as tables().exclusive_owner(), but the PTE read goes
    // through the MMU's page-walk cache instead of a full radix walk.
    vm::Mmu* const mmu = shootdowns_->mmu();
    const vm::Pte pte =
        mmu ? mmu->walk(*as_, req.vpn) : as_->tables().get(req.vpn);
    if (pte.present() && !pte.shared()) {
      // A single owner proven by the ownership bits: that thread is the
      // only one ever to have touched the page, so its core holds the
      // only possible 4 KB entry.
      targets_scratch_.clear();
      const vm::CoreId owner_core =
          core_of(static_cast<vm::ThreadId>(pte.thread()));
      if (owner_core != initiator) targets_scratch_.push_back(owner_core);
      return targets_scratch_;
    }
  }
  // Shared page (or no ownership knowledge): every process core.
  return broadcast_targets(initiator);
}

std::span<const vm::CoreId> Migrator::chunk_shootdown_targets(
    std::span<const vm::Vpn> moved, bool was_huge, vm::CoreId initiator) {
  if (was_huge || !config_.mechanism.targeted_shootdown) {
    return broadcast_targets(initiator);
  }
  // Base-paged chunk: each 4 KB entry lives only on its exclusive owner's
  // core, so the union of owner cores covers the batch. Ownership bits
  // survive remap, so this is valid before or after the copy loop.
  std::vector<vm::CoreId>& targets = targets_scratch_;
  targets.clear();
  // The batch lives in one (or a few) 2 MB chunks, so one leaf lookup
  // serves each 512-page run — ownership reads become direct leaf loads
  // instead of full radix walks.
  const vm::PageTable& pt = as_->tables().process_table();
  const vm::LeafTable* leaf = nullptr;
  vm::Vpn leaf_chunk = ~vm::Vpn{0};
  for (const vm::Vpn vpn : moved) {
    const vm::Vpn chunk = vpn / sim::kPagesPerHuge;
    if (chunk != leaf_chunk) {
      leaf = pt.leaf_of(vpn);
      leaf_chunk = chunk;
    }
    const vm::Pte pte =
        leaf ? leaf->get(vm::PageTable::pte_index(vpn)) : vm::Pte{};
    if (!pte.present() || pte.shared()) {
      return broadcast_targets(initiator);  // shared (or unmapped)
    }
    const vm::CoreId c = core_of(static_cast<vm::ThreadId>(pte.thread()));
    if (c != initiator &&
        std::find(targets.begin(), targets.end(), c) == targets.end()) {
      targets.push_back(c);
    }
  }
  return targets;
}

bool Migrator::execute_chunk(const MigrationRequest& req, sim::Rng& rng,
                             MigrationStats& stats) {
  (void)rng;
  const sim::CostModel& cost = mechanism_.cost_model();
  const bool sync = req.mode == CopyMode::kSync;
  sim::Cycles& bucket = sync ? stats.stall_cycles : stats.daemon_cycles;
  const vm::CoreId initiator =
      sync ? core_of(req.owner) : config_.daemon_core;
  // Captured before the move: a huge-mapped chunk's 2 MB TLB entry may be
  // cached by any core whose thread touched any page of the chunk, so the
  // flush round below must broadcast regardless of per-page ownership.
  const bool was_huge =
      as_->chunk_state(req.vpn) == vm::AddressSpace::ChunkState::kHuge;
  obs::ScopedSpan op_span =
      obs_.span(obs::SpanKind::kMigrationOp,
                static_cast<double>(sim::kPagesPerHuge), req.to, req.owner);

  const vm::Vpn base = as_->chunk_base(req.vpn);
  vm::Mmu* const mmu = shootdowns_->mmu();
  std::vector<vm::Vpn>& moved = moved_scratch_;
  moved.clear();
  moved.reserve(sim::kPagesPerHuge);
  bool complete = true;
  for (std::uint64_t i = 0; i < sim::kPagesPerHuge; ++i) {
    const vm::Vpn vpn = base + i;
    // All 512 pages share one leaf, so the Mmu's page-walk cache turns
    // 511 of these radix walks into a single hash probe each.
    const vm::Pte pte = mmu ? mmu->walk(*as_, vpn) : as_->tables().get(vpn);
    if (!pte.present() || mem::tier_of(pte.pfn()) == req.to) continue;
    auto dest = topo_->allocator(req.to).allocate();
    if (!dest) {
      complete = false;  // destination exhausted mid-chunk: partial move
      break;
    }
    const mem::Pfn old = as_->remap(vpn, *dest);
    record_move(vpn, old, req.to, req.provenance);
    if (config_.shadowing) shadows_.invalidate(vpn);
    topo_->allocator(mem::tier_of(old)).free(old);
    moved.push_back(vpn);
  }
  if (moved.empty()) {
    // Nothing movable: either every page already sits in the target tier
    // (stale request) or the very first allocation failed.
    return abort_request(req, complete ? obs::MigAbortReason::kStale
                                       : obs::MigAbortReason::kDestinationFull);
  }
  last_partial_ = !complete;
  if (!complete &&
      as_->chunk_state(req.vpn) == vm::AddressSpace::ChunkState::kHuge) {
    // A huge mapping cannot straddle tiers: a partial move forces a split.
    as_->split_chunk(req.vpn);
    if (mmu) mmu->invalidate_pwc(as_->pid(), req.vpn);
    bucket += config_.huge_split_cycles;
  }

  // Batched mechanics: one flush round for the whole chunk, amortised
  // per-page unmap/copy/remap.
  const auto targets = chunk_shootdown_targets(moved, was_huge, initiator);
  bucket += phase(obs::MigPhase::kUnmap, moved.size(),
                  cost.unmap_batched(moved.size()));
  {
    // The shootdown phase span wraps the controller call so the IPI-round
    // span it records nests inside; the controller advances the cursor.
    obs::ScopedSpan sd_span =
        obs_.span(obs::span_kind_for(obs::MigPhase::kShootdown),
                  static_cast<double>(moved.size()), req.to);
    const sim::Cycles sd_cost =
        shootdowns_->shoot_batch(initiator, targets, as_->pid(), moved);
    bucket += phase(obs::MigPhase::kShootdown, moved.size(), sd_cost,
                    /*with_span=*/false);
    stats.shootdown_ipis += targets.size();
  }
  bucket += phase(obs::MigPhase::kCopy, moved.size(),
                  config_.dma_copy
                      ? moved.size() * cost.params().dma_setup_cycles
                      : cost.copy_batched(moved.size()));
  bucket += phase(obs::MigPhase::kRemap, moved.size(),
                  cost.remap_batched(moved.size()));
  stats.bytes_copied += moved.size() * sim::kPageSize;
  stats.migrated += moved.size();

  // (Re)establish the 2 MB mapping for TLB coverage; collapse_chunk
  // verifies the whole chunk is mapped and co-resident, so a partial move
  // (destination exhausted) safely stays base-paged.
  as_->collapse_chunk(req.vpn);
  if (mmu) mmu->invalidate_pwc(as_->pid(), req.vpn);
  return true;
}

bool Migrator::execute_one(const MigrationRequest& req, sim::Rng& rng,
                           MigrationStats& stats) {
  if (req.whole_chunk) return execute_chunk(req, rng, stats);

  const sim::CostModel& cost = mechanism_.cost_model();
  const bool sync = req.mode == CopyMode::kSync;
  sim::Cycles& bucket = sync ? stats.stall_cycles : stats.daemon_cycles;
  const vm::CoreId initiator =
      sync ? core_of(req.owner) : config_.daemon_core;

  vm::Mmu* const mmu = shootdowns_->mmu();
  const vm::Pte pte =
      mmu ? mmu->walk(*as_, req.vpn) : as_->tables().get(req.vpn);
  if (!pte.present() || mem::tier_of(pte.pfn()) == req.to) {
    return abort_request(req, obs::MigAbortReason::kStale);
  }

  obs::ScopedSpan op_span = obs_.span(obs::SpanKind::kMigrationOp,
                                      /*arg=*/1.0, req.to, req.owner);

  // THP split precedes any base-page migration of a huge-mapped chunk.
  // The stale 2 MB entry may be cached by any core whose thread touched
  // any page of the chunk — per-page ownership says nothing about who
  // cached the chunk translation — so the split itself pays a broadcast
  // flush round (Linux pmdp_invalidate + flush semantics). Flushing here,
  // not with the page's migration, keeps the chunk consistent on every
  // later exit path (destination-full bail-out, async abort) and lets the
  // migration's own shootdown stay targeted.
  if (as_->is_huge(req.vpn)) {
    as_->split_chunk(req.vpn);
    if (mmu) mmu->invalidate_pwc(as_->pid(), req.vpn);
    bucket += config_.huge_split_cycles;
    op_span.advance(config_.huge_split_cycles);
    const auto split_targets = broadcast_targets(initiator);
    obs::ScopedSpan sd_span =
        obs_.span(obs::span_kind_for(obs::MigPhase::kShootdown),
                  /*arg=*/1.0, req.to);
    bucket += phase(obs::MigPhase::kShootdown, 1,
                    shootdowns_->shoot_single(initiator, split_targets,
                                              as_->pid(), req.vpn),
                    /*with_span=*/false);
    stats.shootdown_ipis += split_targets.size();
  }

  const auto targets = shootdown_targets(req, initiator);
  const bool demotion = req.to != mem::kFastTier;
  const bool dirty = pte.dirty();

  // Cheap demotion path: a clean page with a live shadow is just remapped
  // back onto its slow-tier copy — no content copy at all.
  if (demotion && !dirty && config_.shadowing) {
    if (auto shadow = shadows_.consume(req.vpn)) {
      bucket += phase(obs::MigPhase::kUnmap, 1, cost.unmap(1));
      {
        obs::ScopedSpan sd_span =
            obs_.span(obs::span_kind_for(obs::MigPhase::kShootdown),
                      /*arg=*/1.0, req.to);
        bucket += phase(obs::MigPhase::kShootdown, 1,
                        shootdowns_->shoot_single(initiator, targets,
                                                  as_->pid(), req.vpn),
                        /*with_span=*/false);
        stats.shootdown_ipis += targets.size();
      }
      const mem::Pfn old = as_->remap(req.vpn, *shadow);
      record_move(req.vpn, old, req.to, req.provenance);
      topo_->allocator(mem::tier_of(old)).free(old);
      bucket += phase(obs::MigPhase::kRemap, 1, cost.remap(1));
      ++stats.shadow_remaps;
      ++stats.migrated;
      return true;
    }
  }

  auto dest = topo_->allocator(req.to).allocate();
  if (!dest) {
    // Destination tier full: the policy must make room first.
    return abort_request(req, obs::MigAbortReason::kDestinationFull);
  }

  // Async copies race application writes; write-intensive pages may abort.
  if (!sync) {
    const double p_success = async_success_probability(
        req.write_intensive, config_.async_max_retries);
    // Expected extra copies before resolution (success or abort).
    const double p_dirty = 1.0 - p_success;
    if (p_dirty > 0.0) {
      const unsigned extra = static_cast<unsigned>(
          rng.uniform() * config_.async_max_retries * (1.0 - p_success));
      stats.retries += extra;
      bucket += phase(obs::MigPhase::kCopy, extra,
                      extra * cost.copy_single());
      stats.bytes_copied += extra * sim::kPageSize;
    }
    if (!rng.chance(p_success)) {
      topo_->allocator(req.to).free(*dest);
      ++stats.failed;
      return abort_request(req, obs::MigAbortReason::kAsyncCopyAborted);
    }
  }

  bucket += phase(obs::MigPhase::kUnmap, 1, cost.unmap(1));
  {
    obs::ScopedSpan sd_span =
        obs_.span(obs::span_kind_for(obs::MigPhase::kShootdown),
                  /*arg=*/1.0, req.to);
    bucket += phase(obs::MigPhase::kShootdown, 1,
                    shootdowns_->shoot_single(initiator, targets, as_->pid(),
                                              req.vpn),
                    /*with_span=*/false);
    stats.shootdown_ipis += targets.size();
  }
  // HeMem-style DMA offload: the engine streams the page while the CPU
  // only pays descriptor setup; otherwise the CPU performs the copy.
  bucket += phase(obs::MigPhase::kCopy, 1,
                  config_.dma_copy ? cost.params().dma_setup_cycles
                                   : cost.copy_single());
  stats.bytes_copied += sim::kPageSize;
  const mem::Pfn old = as_->remap(req.vpn, *dest);
  record_move(req.vpn, old, req.to, req.provenance);
  bucket += phase(obs::MigPhase::kRemap, 1, cost.remap(1));
  if (!req.shared) ++stats.private_migrated;

  const bool promotion_from_slow =
      req.to == mem::kFastTier && mem::tier_of(old) != mem::kFastTier;
  if (config_.shadowing && promotion_from_slow && !dirty) {
    shadows_.install(req.vpn, old);  // registry owns the frame now
  } else {
    if (config_.shadowing) shadows_.invalidate(req.vpn);
    topo_->allocator(mem::tier_of(old)).free(old);
  }
  ++stats.migrated;
  return true;
}

MigrationStats Migrator::execute(std::span<const MigrationRequest> requests,
                                 sim::Rng& rng) {
  MigrationStats stats;
  if (requests.empty()) return stats;

  // Admission control filters before any mechanism cost is composed:
  // vetoed requests pay nothing (no prep share, no RNG draw) and finalize
  // their provenance rows with the veto reason.
  std::span<const MigrationRequest> admitted = requests;
  if (admission_) {
    admitted_scratch_.clear();
    for (const auto& req : requests) {
      const AdmissionVerdict verdict =
          admission_->assess(admission_inputs(req));
      if (verdict.admitted) {
        admitted_scratch_.push_back(req);
      } else {
        ++stats.vetoed;
        veto_request(req, verdict.reason);
      }
    }
    admitted = admitted_scratch_;
    if (admitted.empty()) {
      totals_ += stats;
      return stats;
    }
  }

  bool any_sync = false, any_async = false;
  for (const auto& r : admitted) {
    (r.mode == CopyMode::kSync ? any_sync : any_async) = true;
  }
  // Migration preparation is paid once per migrate_pages() invocation; sync
  // and async requests travel in separate invocations (app context vs the
  // migration thread).
  if (any_sync) {
    stats.stall_cycles +=
        phase(obs::MigPhase::kPrep, admitted.size(), mechanism_.prep_cost());
  }
  if (any_async) {
    stats.daemon_cycles +=
        phase(obs::MigPhase::kPrep, admitted.size(), mechanism_.prep_cost());
  }

  for (const auto& req : admitted) {
    ++stats.attempted;
    if (!ledger_) {
      execute_one(req, rng, stats);
      continue;
    }
    const MigrationStats before = stats;
    last_abort_ = obs::MigAbortReason::kNone;
    last_partial_ = false;
    const bool executed = execute_one(req, rng, stats);
    if (req.provenance != 0) link_outcome(req, executed, before, stats);
  }
  totals_ += stats;
  obs_migrated_->inc(stats.migrated);
  obs_failed_->inc(stats.failed);
  obs_shadow_remaps_->inc(stats.shadow_remaps);
  obs_bytes_->inc(stats.bytes_copied);
  return stats;
}

}  // namespace vulcan::mig

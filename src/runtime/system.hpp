// TieredSystem: the co-location harness. It owns the machine model (tiers,
// per-core TLBs), the managed workloads (address space + profiler + heat
// tracker + migration thread each), and a pluggable SystemPolicy, and runs
// the epoch loop:
//
//   access generation -> TLB/page-table/tier accounting -> profiling
//   -> policy planning -> migration execution -> metrics.
//
// Everything is deterministic in the configured seed.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "core/fairness.hpp"
#include "mem/topology.hpp"
#include "mig/admission.hpp"
#include "mig/migration_thread.hpp"
#include "obs/app_stats.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/scope.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "policy/policy.hpp"
#include "prof/chrono.hpp"
#include "prof/hybrid.hpp"
#include "prof/pebs.hpp"
#include "prof/pt_scan.hpp"
#include "prof/telescope.hpp"
#include "runtime/metrics.hpp"
#include "sim/config.hpp"
#include "sim/cost_model.hpp"
#include "sim/rng.hpp"
#include "vm/mmu.hpp"
#include "vm/shootdown.hpp"
#include "wl/workload.hpp"

namespace vulcan::runtime {

enum class ProfilerKind : std::uint8_t {
  kPebs,
  kPtScan,
  kHintFault,
  kHybrid,
  kTelescope,
  kChrono,
};

class TieredSystem {
 public:
  /// Deprecated construction shim: prefer runtime::SystemBuilder
  /// (runtime/builder.hpp), which validates at build() time and reports
  /// errors instead of silently accepting bad setups. Kept so existing
  /// harnesses keep compiling; the builder fills in this struct.
  struct Config {
    sim::MachineConfig machine;
    /// Override the two-tier paper testbed with an arbitrary topology
    /// (e.g. HBM + DRAM + CXL three-tier). Tier 0 must be the fastest.
    std::optional<std::vector<mem::TierConfig>> custom_tiers;
    sim::Cycles epoch = sim::CpuClock::from_millis(250);
    /// Simulated access samples per workload per epoch; each carries the
    /// weight (real accesses / samples).
    std::uint64_t samples_per_epoch = 10'000;
    /// Cores dedicated to each application (paper: 8).
    unsigned cores_per_workload = 8;
    /// Heat decay per epoch. Slow enough that a scanner's whole sweep
    /// stays warm across one rotation (Memtis-style long counting window).
    double heat_decay = 0.85;
    ProfilerKind profiler = ProfilerKind::kHybrid;
    bool thp = true;
    std::uint64_t seed = 42;
    /// Override the inter-tier migration budget (pages/epoch); 0 = derive
    /// from the (capacity-scaled) link bandwidth.
    std::uint64_t migration_budget_override = 0;
    /// Migration threads and profiling daemons run on the application's
    /// dedicated cores (§3.2), so their cycles steal app throughput.
    bool charge_daemon_to_app = true;
    /// Structured-trace ring capacity (events retained; oldest dropped).
    std::size_t trace_capacity = 1 << 16;
    /// Record hierarchical timeline spans (epoch -> policy -> migration ->
    /// phases -> shootdowns) into the trace ring, and roll them up into the
    /// per-app attribution metrics. Cheap; off only for span-free traces.
    bool record_spans = true;
    /// Migration-mechanism cost constants. Defaults are the paper-fitted
    /// calibration (sim/cost_model.hpp); the what-if engine
    /// (obs/whatif.hpp) re-runs scenarios with individual constants scaled
    /// to measure each mechanism's causal share of slowdown.
    sim::CostModelParams cost_params;
    /// Invariant auditing (check/invariants.hpp): at the end of every
    /// `audit_every`-th epoch the InvariantAuditor cross-validates frame
    /// allocators, residency censuses, chunk states, TLBs and replicated
    /// page tables (plus registry counters at kFull). On by default — the
    /// audit is the regression net every integration test rides on.
    check::AuditLevel audit = check::AuditLevel::kBasic;
    std::uint64_t audit_every = 1;
    /// Throw check::AuditFailure from run_epochs on a violation (default);
    /// when false the report is only recorded (last_audit()) and traced.
    bool audit_throw = true;
    /// vm::Mmu software page-walk cache. Host-side only: the cost model
    /// still charges the full walk on every TLB miss, so artefacts are
    /// bit-identical with the PWC on or off (the fuzz oracle varies it).
    bool pwc = true;
    /// Access-pipeline batch size: the engine generates, translates and
    /// accounts accesses in batches of this many through
    /// vm::Mmu::translate_batch. Behavior-neutral by contract — any value
    /// >= 1 produces byte-identical artefacts (fuzz-enforced).
    std::uint64_t translate_batch = 256;
    /// Continuous telemetry (obs/timeseries.hpp): the always-on windowed
    /// time-series store fed from the registry at every epoch boundary.
    /// Read-only over the registry, so default artefacts are unchanged.
    obs::TimeSeriesConfig timeseries;
    /// SLO rules (obs/slo.hpp) evaluated over the store each epoch. Opt-in
    /// — installed rules add slo.* counters to the registry snapshot, and
    /// the fuzz oracle pins snapshots of rule-free runs.
    std::vector<obs::SloSpec> slo_rules;
    /// Flight-recorder trace-tail horizon, in epochs.
    std::size_t flight_epochs = 64;
    /// Flight-recorder auto-dump destination: written at most once, on the
    /// first of AuditFailure / critical SLO firing / engine exception.
    /// Empty disables auto dumps (on-demand dump_flight still works).
    std::string flight_dump_path;
    /// Master switch for the telemetry storey (store + SLO + flight
    /// recorder). The hotpath bench guard measures against a telemetry-off
    /// run; everywhere else leave it on.
    bool telemetry = true;
    /// Decision provenance ledger (obs/provenance.hpp). Off by default —
    /// when disabled the ledger records nothing and every call site costs
    /// one branch, so pinned fuzz digests and default artefacts are
    /// byte-identical to a build without it.
    obs::ProvenanceConfig provenance;
    /// Migration admission control (mig/admission.hpp). Off by default —
    /// when disabled no controller is constructed, the migrators carry a
    /// null pointer, no adm.* counters enter the registry, and every
    /// artefact is byte-identical to an admission-free build.
    mig::AdmissionSpec admission;
  };

  TieredSystem(Config config, std::unique_ptr<policy::SystemPolicy> policy);
  ~TieredSystem();
  TieredSystem(const TieredSystem&) = delete;
  TieredSystem& operator=(const TieredSystem&) = delete;

  /// Register a workload; its RSS is demand-faulted as it runs. Returns the
  /// workload index. Each application may select its own profiling
  /// mechanism (§3.2 "decoupled page profiling selection"); by default it
  /// inherits the system-wide Config::profiler.
  unsigned add_workload(std::unique_ptr<wl::Workload> workload,
                        std::optional<ProfilerKind> profiler = std::nullopt);

  /// Retire workload `w` (fleet churn): drop its queued migrations, free
  /// its shadow frames, release every mapped frame back to the allocators,
  /// invalidate its cached translations (pid-targeted TLB + PWC flush) and
  /// tell the policy to forget it. The slot stays in place — indices are
  /// stable and auditable — but the workload stops generating accesses,
  /// being planned, or contributing metrics, and the auditor's
  /// departed-residency rule pins that it holds nothing. Idempotent.
  void remove_workload(unsigned w);
  /// True once `w` has been retired via remove_workload().
  bool workload_departed(unsigned w) const {
    return workloads_[w]->departed;
  }
  /// Workloads admitted and not yet departed.
  std::size_t live_workload_count() const;

  /// Run `count` epochs.
  void run_epochs(unsigned count);

  /// Pre-fault workload `w`'s entire RSS, interleaving pages across the
  /// tiers round-robin (the Nomad-style microbenchmark setup: data placed
  /// in specific tier segments before measurement, so migration actually
  /// has work to do). `fast_stride` of every `fast_stride + slow_stride`
  /// pages land fast while capacity lasts.
  void prefault(unsigned w, unsigned fast_stride = 1,
                unsigned slow_stride = 1);

  double now_seconds() const {
    return sim::CpuClock::to_seconds(now_);
  }
  std::size_t workload_count() const { return workloads_.size(); }

  const MetricsRecorder& metrics() const { return metrics_; }
  policy::SystemPolicy& policy() { return *policy_; }
  mem::Topology& topology() { return *topo_; }
  core::CfiAccumulator& cfi() { return cfi_; }

  /// The system-wide metrics registry every subsystem reports into.
  obs::Registry& obs_registry() { return registry_; }
  const obs::Registry& obs_registry() const { return registry_; }
  /// The structured event trace (epoch/migration/shootdown/policy records).
  const obs::TraceRing& obs_trace() const { return trace_; }
  /// The shared span recorder (inert when Config::record_spans is false).
  const obs::SpanRecorder& obs_spans() const { return spans_; }
  /// Per-app fairness attribution rolled up from epochs and closing spans.
  const obs::AppStats& app_stats() const { return app_stats_; }
  /// The windowed time-series store (inert when Config::telemetry is off).
  const obs::TimeSeriesStore& obs_timeseries() const { return timeseries_; }
  /// The SLO monitor; null unless Config::slo_rules installed one.
  const obs::SloMonitor* slo_monitor() const {
    return slo_ ? &*slo_ : nullptr;
  }
  /// The black-box flight recorder over this system's telemetry.
  const obs::FlightRecorder& flight() const { return flight_; }
  /// The decision provenance ledger (inert unless Config::provenance
  /// enabled it). Non-const access so harnesses can finalize() before
  /// exporting.
  obs::ProvenanceLedger& provenance() { return provenance_; }
  const obs::ProvenanceLedger& provenance() const { return provenance_; }
  /// The migration admission controller; null unless Config::admission
  /// enabled it. Harnesses read its admitted()/vetoed() totals for the
  /// with/without battery columns.
  const mig::AdmissionController* admission_controller() const {
    return admission_ ? &*admission_ : nullptr;
  }
  /// On-demand flight dump to `path`. False when telemetry is off or the
  /// file cannot be written.
  bool dump_flight(const std::string& path,
                   const std::string& reason = "on_demand",
                   const std::string& cause = "");

  /// Eq. 4 fairness over everything run so far.
  double fairness_cfi() const { return cfi_.cfi(); }

  // Introspection for experiment harnesses.
  vm::AddressSpace& address_space(unsigned w) { return *workloads_[w]->as; }
  prof::HeatTracker& tracker(unsigned w) { return *workloads_[w]->tracker; }
  wl::Workload& workload(unsigned w) { return *workloads_[w]->workload; }
  mig::Migrator& migrator(unsigned w) { return *workloads_[w]->migrator; }
  const vm::ShootdownController& shootdowns() const { return *shootdowns_; }
  std::uint64_t migration_budget_pages() const { return migration_budget_; }
  /// The translation facade: per-core TLBs + page-walk cache.
  vm::Mmu& mmu() { return *mmu_; }
  const vm::Mmu& mmu() const { return *mmu_; }
  /// Deprecated shims for pre-Mmu call sites (auditor hooks and
  /// fault-injection tests reached the TLB vector directly); removal
  /// planned once out-of-tree callers go through mmu().tlbs().
  std::vector<vm::Tlb>& tlbs() { return mmu_->tlbs(); }
  const std::vector<vm::Tlb>& tlbs() const { return mmu_->tlbs(); }

  /// Snapshot of the machine for the invariant auditor.
  check::SystemView audit_view() const;
  /// Run an audit now (at Config::audit level, kFull when auditing is
  /// off), record it as last_audit(), emit trace events/counters, and
  /// throw check::AuditFailure per Config::audit_throw.
  const check::AuditReport& run_audit();
  /// Most recent audit outcome (empty report before the first audit).
  const check::AuditReport& last_audit() const { return last_audit_; }

 private:
  struct ManagedWorkload {
    std::unique_ptr<wl::Workload> workload;
    std::unique_ptr<vm::AddressSpace> as;
    std::unique_ptr<prof::HeatTracker> tracker;
    std::unique_ptr<prof::Profiler> profiler;
    std::unique_ptr<mig::Migrator> migrator;
    std::unique_ptr<mig::MigrationThread> migration_thread;
    std::vector<vm::CoreId> cores;
    /// Fleet churn: retired via remove_workload(). The slot persists for
    /// index stability but is skipped by every epoch phase.
    bool departed = false;
    // Per-epoch scratch (reset each epoch):
    double epoch_fast = 0, epoch_slow = 0;
    double epoch_latency_weighted = 0;  ///< sum of exposed latency x weight
    sim::Cycles epoch_inline_overhead = 0;  ///< faults + profiler costs
    mig::MigrationStats epoch_migration;
  };

  void run_one_epoch();
  const check::AuditReport& run_audit_internal(bool throw_on_failure);
  void simulate_accesses(ManagedWorkload& mw, double epoch_seconds,
                         std::uint64_t sample_quota);
  /// Record ledger alloc transitions for every page a fault populated.
  /// THP faults fill a whole 512-page chunk (possibly split across tiers
  /// under allocator fallback), so the chunk is swept and each previously
  /// unknown present page recorded at its own tier.
  void record_fault_alloc(vm::AddressSpace& as, vm::Vpn vpn);
  std::unique_ptr<prof::Profiler> make_profiler(prof::HeatTracker& tracker,
                                                ProfilerKind kind);

  Config config_;
  // Declared before the subsystems that cache instrument pointers into them.
  obs::Registry registry_;
  obs::TraceRing trace_;
  obs::SpanRecorder spans_;
  obs::AppStats app_stats_;
  // Declared before workloads_ so migrators' ledger pointers stay valid
  // for their whole lifetime.
  obs::ProvenanceLedger provenance_;
  // Same ordering rule: the migrators hold raw pointers to the shared
  // admission controller, so it must outlive workloads_.
  std::optional<mig::AdmissionController> admission_;
  std::unique_ptr<policy::SystemPolicy> policy_;
  std::unique_ptr<mem::Topology> topo_;
  std::unique_ptr<vm::Mmu> mmu_;
  std::unique_ptr<vm::ShootdownController> shootdowns_;
  // Reused access-pipeline batch buffers (no per-epoch heap churn).
  std::vector<vm::Mmu::Access> access_batch_;
  std::vector<vm::Mmu::Translation> translation_batch_;
  sim::CostModel cost_;
  std::vector<std::unique_ptr<ManagedWorkload>> workloads_;
  std::vector<policy::WorkloadView> views_;
  // Scratch for step 4: the non-departed subset of views_ handed to the
  // policy each epoch (member to avoid per-epoch reallocation).
  std::vector<policy::WorkloadView> active_views_;
  MetricsRecorder metrics_;
  core::CfiAccumulator cfi_;
  sim::Rng rng_;
  sim::Cycles now_ = 0;
  std::uint64_t epoch_index_ = 0;
  // Ring drops already surfaced as the obs.trace.dropped_events counter.
  std::uint64_t dropped_reported_ = 0;
  std::uint64_t migration_budget_ = 0;
  check::AuditReport last_audit_;
  // Telemetry storey: store + optional monitor + flight recorder (wired in
  // the constructor body, over pointers to the members above).
  obs::TimeSeriesStore timeseries_;
  std::optional<obs::SloMonitor> slo_;
  obs::FlightRecorder flight_;
  unsigned next_core_ = 0;
  // Previous-epoch tier utilisation drives this epoch's loaded latencies.
  std::vector<double> tier_utilization_;
  // Previous epoch's migration traffic (unscaled bytes), loading both tiers.
  double last_migration_bytes_ = 0.0;
};

}  // namespace vulcan::runtime

// Per-epoch metric recording and CSV export for the experiment harnesses.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/exporter.hpp"
#include "sim/clock.hpp"

namespace vulcan::runtime {

/// One workload's measurements for one epoch.
struct WorkloadEpochMetrics {
  double fthr = 0.0;           ///< fast-tier hit ratio measured this epoch
  double performance = 0.0;    ///< normalised to the all-fast ideal (0..1]
  double avg_latency_ns = 0.0; ///< average exposed memory latency
  std::uint64_t fast_pages = 0;
  std::uint64_t slow_pages = 0;
  std::uint64_t quota = 0;     ///< policy quota (UINT64_MAX if unmanaged)
  double accesses = 0.0;       ///< real (weighted) accesses this epoch
  sim::Cycles stall_cycles = 0;
  sim::Cycles daemon_cycles = 0;
  std::uint64_t migrated = 0;
  std::uint64_t failed_migrations = 0;
  std::uint64_t shadow_remaps = 0;
};

struct EpochMetrics {
  double time_s = 0.0;
  std::vector<WorkloadEpochMetrics> workloads;
};

class MetricsRecorder {
 public:
  void record(EpochMetrics epoch) { epochs_.push_back(std::move(epoch)); }

  const std::vector<EpochMetrics>& epochs() const { return epochs_; }
  bool empty() const { return epochs_.empty(); }

  /// Mean of a per-workload field over epochs [from, to) where the
  /// workload existed *and ran*. Getter receives the workload metrics.
  /// Departed (fleet-churned) workloads keep an index-aligned all-zero row
  /// each epoch; those rows are identified by performance == 0 (live rows
  /// always have performance > 0 since the ideal CPA is positive) and
  /// excluded, so a workload's mean covers only its live epochs.
  template <typename Getter>
  double mean(std::size_t workload, Getter&& get, std::size_t from = 0,
              std::size_t to = SIZE_MAX) const {
    double sum = 0.0;
    std::size_t n = 0;
    const std::size_t hi = std::min(to, epochs_.size());
    for (std::size_t e = from; e < hi; ++e) {
      if (workload < epochs_[e].workloads.size() &&
          epochs_[e].workloads[workload].performance > 0.0) {
        sum += get(epochs_[e].workloads[workload]);
        ++n;
      }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  }

  double mean_performance(std::size_t workload, std::size_t from = 0) const {
    return mean(workload,
                [](const WorkloadEpochMetrics& m) { return m.performance; },
                from);
  }
  double mean_fthr(std::size_t workload, std::size_t from = 0) const {
    return mean(workload,
                [](const WorkloadEpochMetrics& m) { return m.fthr; }, from);
  }

  /// Column names of the per-epoch-per-workload table (shared by every
  /// export backend).
  static const std::vector<std::string>& columns();

  /// Stream the whole table (one row per epoch x workload) through any
  /// obs::Exporter backend — CSV, JSONL, or a future sink.
  void write(obs::Exporter& exporter) const;

  /// Legacy CSV writer, kept verbatim so its output can be asserted
  /// byte-identical with `write(CsvExporter)` (see runtime_metrics_test).
  void write_csv(std::ostream& out) const;

 private:
  std::vector<EpochMetrics> epochs_;
};

}  // namespace vulcan::runtime

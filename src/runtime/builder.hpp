// SystemBuilder: the fluent public construction API for TieredSystem.
//
//   auto built = runtime::SystemBuilder{}
//                    .machine({.cores = 32})
//                    .epoch_ms(250)
//                    .profiler(runtime::ProfilerKind::kHybrid)
//                    .seed(42)
//                    .policy("vulcan")
//                    .add_workload(wl::make_memcached())
//                    .build();
//   if (!built) { /* built.error() explains what was wrong */ }
//   runtime::TieredSystem& sys = *built.value();
//
// All validation happens at build() and is reported as an expected-style
// result instead of asserting: misconfigurations (slowest tier first, zero
// samples, zero cores, unknown policy name, ...) come back as messages the
// caller can print.
//
// The raw `TieredSystem::Config` + constructor remain available as a thin
// deprecated shim for older harnesses; new code should use the builder.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/system.hpp"

namespace vulcan::runtime {

/// Minimal expected-style result (the repo targets C++20; std::expected is
/// C++23). Holds either a value or an error message.
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  static Expected failure(std::string message) {
    Expected e;
    e.error_ = std::move(message);
    return e;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Valid only when ok().
  T& value() { return *value_; }
  const T& value() const { return *value_; }
  /// Empty when ok().
  const std::string& error() const { return error_; }

 private:
  Expected() = default;
  std::optional<T> value_;
  std::string error_;
};

using BuildResult = Expected<std::unique_ptr<TieredSystem>>;

class SystemBuilder {
 public:
  SystemBuilder() = default;

  SystemBuilder& machine(sim::MachineConfig m) {
    config_.machine = m;
    return *this;
  }
  /// Arbitrary topology override (HBM + DRAM + CXL, ...). Tier 0 must be
  /// the fastest; build() enforces it.
  SystemBuilder& tiers(std::vector<mem::TierConfig> tiers) {
    config_.custom_tiers = std::move(tiers);
    return *this;
  }
  SystemBuilder& epoch(sim::Cycles cycles) {
    config_.epoch = cycles;
    return *this;
  }
  SystemBuilder& epoch_ms(double ms) {
    config_.epoch = sim::CpuClock::from_nanos(
        static_cast<std::uint64_t>(ms * 1e6));
    return *this;
  }
  SystemBuilder& samples_per_epoch(std::uint64_t samples) {
    config_.samples_per_epoch = samples;
    return *this;
  }
  SystemBuilder& cores_per_workload(unsigned cores) {
    config_.cores_per_workload = cores;
    return *this;
  }
  SystemBuilder& heat_decay(double decay) {
    config_.heat_decay = decay;
    return *this;
  }
  SystemBuilder& profiler(ProfilerKind kind) {
    config_.profiler = kind;
    return *this;
  }
  SystemBuilder& thp(bool on) {
    config_.thp = on;
    return *this;
  }
  SystemBuilder& seed(std::uint64_t seed) {
    config_.seed = seed;
    return *this;
  }
  SystemBuilder& migration_budget(std::uint64_t pages_per_epoch) {
    config_.migration_budget_override = pages_per_epoch;
    return *this;
  }
  SystemBuilder& charge_daemon_to_app(bool on) {
    config_.charge_daemon_to_app = on;
    return *this;
  }
  SystemBuilder& trace_capacity(std::size_t events) {
    config_.trace_capacity = events;
    return *this;
  }
  /// Toggle hierarchical timeline spans (on by default; see
  /// Config::record_spans).
  SystemBuilder& spans(bool on) {
    config_.record_spans = on;
    return *this;
  }
  /// Override the paper-fitted migration cost constants (what-if
  /// perturbations, alternative calibrations).
  SystemBuilder& cost_params(sim::CostModelParams params) {
    config_.cost_params = params;
    return *this;
  }
  /// Invariant-audit level run at epoch boundaries (default kBasic; see
  /// Config::audit). kFull adds registry-counter drift checks.
  SystemBuilder& audit(check::AuditLevel level) {
    config_.audit = level;
    return *this;
  }
  /// Audit every n-th epoch (default 1; 0 disables the periodic hook
  /// without changing the level used by TieredSystem::run_audit).
  SystemBuilder& audit_every(std::uint64_t n) {
    config_.audit_every = n;
    return *this;
  }
  /// Whether a failed audit throws check::AuditFailure (default true).
  SystemBuilder& audit_throw(bool on) {
    config_.audit_throw = on;
    return *this;
  }
  /// Software page-walk cache in the vm::Mmu facade (default on).
  /// Behavior-neutral by contract: artefacts are bit-identical either
  /// way; the differential fuzz oracle toggles it.
  SystemBuilder& pwc(bool on) {
    config_.pwc = on;
    return *this;
  }
  /// Accesses per vm::Mmu::translate_batch call (default 256). Any value
  /// >= 1 produces identical artefacts — the fuzz oracle varies it.
  SystemBuilder& translate_batch(std::uint64_t accesses) {
    config_.translate_batch = accesses;
    return *this;
  }
  /// Time-series store configuration (window width, retention, EWMA
  /// weight). The store itself is always on; see Config::timeseries.
  SystemBuilder& timeseries(obs::TimeSeriesConfig cfg) {
    config_.timeseries = cfg;
    return *this;
  }
  /// Install SLO rules (e.g. obs::default_slo_pack()). Opt-in: rules add
  /// slo.* counters to the registry snapshot.
  SystemBuilder& slo(std::vector<obs::SloSpec> rules) {
    config_.slo_rules = std::move(rules);
    return *this;
  }
  /// Flight-recorder auto-dump path (written at most once, on the first
  /// audit failure / critical SLO / engine exception).
  SystemBuilder& flight_dump(std::string path) {
    config_.flight_dump_path = std::move(path);
    return *this;
  }
  /// Flight-recorder trace-tail horizon in epochs (default 64).
  SystemBuilder& flight_epochs(std::size_t epochs) {
    config_.flight_epochs = epochs;
    return *this;
  }
  /// Master telemetry switch (store + SLO + flight recorder). Off exists
  /// for the bench guard's overhead measurement.
  SystemBuilder& telemetry(bool on) {
    config_.telemetry = on;
    return *this;
  }
  /// Decision provenance ledger (obs/provenance.hpp). Off by default so
  /// pinned fuzz digests and default artefacts are unchanged; on, every
  /// policy decision and page transition is recorded for vulcan_pagescope
  /// and the check:: residency cross-audit.
  SystemBuilder& provenance(bool on) {
    config_.provenance.enabled = on;
    return *this;
  }
  /// Ledger ring capacities (retained decision / transition rows).
  SystemBuilder& provenance_capacity(std::size_t decisions,
                                     std::size_t transitions) {
    config_.provenance.decision_capacity = decisions;
    config_.provenance.transition_capacity = transitions;
    return *this;
  }
  /// Migration admission control (mig/admission.hpp): score every
  /// MigrationRequest's predicted benefit against its calibrated cost and
  /// veto the ones that don't clear the margin. Off by default
  /// (spec.enabled = false) — the migrators then carry a null controller
  /// and every artefact stays byte-identical to an admission-free build.
  /// Works unmodified under every policy in the zoo.
  SystemBuilder& admission(mig::AdmissionSpec spec) {
    config_.admission = spec;
    return *this;
  }

  /// Perturbation hook: direct access to the staged configuration, so the
  /// what-if engine (obs/whatif.hpp) can scale individual cost constants on
  /// a clone between configure and build().
  TieredSystem::Config& config() { return config_; }
  const TieredSystem::Config& config() const { return config_; }

  /// Clone the staged configuration and policy *selection* into a fresh
  /// builder. Staged workloads and a concrete policy instance are
  /// single-owner and do not transfer — re-stage workloads on the clone
  /// (deterministic scenarios rebuild them from their seed anyway).
  /// This is the per-job construction path of the exec batteries: every
  /// parallel run clones the scenario's configuration and builds a system
  /// of its own, so concurrent jobs share no mutable state.
  SystemBuilder clone_config() const {
    SystemBuilder b;
    b.config_ = config_;
    b.policy_name_ = policy_name_;
    return b;
  }

  /// Install a concrete policy instance...
  SystemBuilder& policy(std::unique_ptr<policy::SystemPolicy> policy) {
    policy_ = std::move(policy);
    policy_name_.clear();
    return *this;
  }
  /// ...or name one ("vulcan", "tpp", "memtis", "nomad", "mtm", "cascade").
  /// Unknown names surface as build() errors, not exceptions.
  SystemBuilder& policy(std::string_view name) {
    policy_name_ = std::string(name);
    policy_.reset();
    return *this;
  }

  /// Name of the staged policy selection (empty when a concrete instance
  /// was installed instead). Battery harnesses use it to label jobs.
  const std::string& policy_name() const { return policy_name_; }

  /// Stage a workload; it is registered (in staging order) on the freshly
  /// built system, so indices are 0, 1, ... as with TieredSystem directly.
  SystemBuilder& add_workload(std::unique_ptr<wl::Workload> workload,
                              std::optional<ProfilerKind> profiler =
                                  std::nullopt) {
    staged_.push_back({std::move(workload), profiler});
    return *this;
  }

  /// Validate and construct. Consumes the staged policy and workloads.
  BuildResult build();

 private:
  struct Staged {
    std::unique_ptr<wl::Workload> workload;
    std::optional<ProfilerKind> profiler;
  };

  TieredSystem::Config config_;
  std::unique_ptr<policy::SystemPolicy> policy_;
  std::string policy_name_ = "vulcan";
  std::vector<Staged> staged_;
};

}  // namespace vulcan::runtime

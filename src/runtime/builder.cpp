#include "runtime/builder.hpp"

#include <stdexcept>
#include <string>

#include "runtime/experiment.hpp"

namespace vulcan::runtime {

BuildResult SystemBuilder::build() {
  const auto& c = config_;
  if (c.machine.cores == 0) {
    return BuildResult::failure("machine.cores must be > 0");
  }
  if (c.epoch == 0) {
    return BuildResult::failure("epoch length must be > 0 cycles");
  }
  if (c.samples_per_epoch == 0) {
    return BuildResult::failure("samples_per_epoch must be > 0");
  }
  if (c.cores_per_workload == 0) {
    return BuildResult::failure("cores_per_workload must be > 0");
  }
  if (!(c.heat_decay > 0.0) || c.heat_decay > 1.0) {
    return BuildResult::failure("heat_decay must be in (0, 1]");
  }
  if (c.timeseries.window == 0) {
    return BuildResult::failure("timeseries.window must be > 0 cycles");
  }
  if (c.timeseries.retention == 0) {
    return BuildResult::failure("timeseries.retention must be > 0 windows");
  }
  if (!(c.timeseries.ewma_alpha > 0.0) || c.timeseries.ewma_alpha > 1.0) {
    return BuildResult::failure("timeseries.ewma_alpha must be in (0, 1]");
  }
  if (c.flight_epochs == 0) {
    return BuildResult::failure("flight_epochs must be > 0");
  }
  for (const obs::SloSpec& rule : c.slo_rules) {
    if (rule.name.empty()) {
      return BuildResult::failure("SLO rules must be named");
    }
    if (!(rule.sustain_s > 0.0)) {
      return BuildResult::failure("SLO rule \"" + rule.name +
                                  "\" must sustain for > 0 s");
    }
  }
  if (c.custom_tiers) {
    const auto& tiers = *c.custom_tiers;
    if (tiers.empty()) {
      return BuildResult::failure("custom tier list must not be empty");
    }
    for (std::size_t t = 0; t < tiers.size(); ++t) {
      if (tiers[t].capacity_pages == 0) {
        return BuildResult::failure("tier \"" + tiers[t].name +
                                    "\" has zero capacity");
      }
      if (t > 0 &&
          tiers[t].unloaded_latency_ns < tiers[0].unloaded_latency_ns) {
        return BuildResult::failure(
            "tier 0 must be the fastest tier: \"" + tiers[t].name +
            "\" has lower unloaded latency than \"" + tiers[0].name + "\"");
      }
    }
  }

  std::unique_ptr<policy::SystemPolicy> policy = std::move(policy_);
  if (!policy) {
    if (policy_name_.empty()) {
      return BuildResult::failure("no policy configured");
    }
    try {
      policy = make_policy(policy_name_, c.machine.cores);
    } catch (const std::invalid_argument&) {
      return BuildResult::failure("unknown policy \"" + policy_name_ + "\"");
    }
  }

  auto system = std::make_unique<TieredSystem>(c, std::move(policy));
  for (auto& staged : staged_) {
    system->add_workload(std::move(staged.workload), staged.profiler);
  }
  staged_.clear();
  return BuildResult(std::move(system));
}

}  // namespace vulcan::runtime

// Experiment helpers shared by the benchmark harnesses: policy factory,
// staged workload arrival, and the paper's §5.3 co-location scenario
// (Memcached from t=0, PageRank from t=50 s, Liblinear from t=110 s).
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "runtime/system.hpp"

namespace vulcan::runtime {

/// Build one of the four evaluated systems: "tpp", "memtis", "nomad",
/// "vulcan". Throws std::invalid_argument for anything else.
std::unique_ptr<policy::SystemPolicy> make_policy(std::string_view name,
                                                  unsigned online_cpus = 32);

/// A workload that joins the system at `start_s` simulated seconds.
struct StagedWorkload {
  double start_s = 0.0;
  std::unique_ptr<wl::Workload> workload;
};

/// The paper's dynamic co-location timeline (Table 2 workloads).
std::vector<StagedWorkload> paper_colocation(std::uint64_t seed = 1);

/// The two-app cold-page-dilemma co-location (Fig. 1): a latency-critical
/// hot-set service from t=0 joined by a best-effort sequential scanner at
/// t=10 s. Shared by `vulcan_sim --scenario dilemma`, the CI fairness
/// smoke, and the what-if engine's built-in scenario.
std::vector<StagedWorkload> dilemma_colocation(std::uint64_t seed = 42);

/// Drive `sys` until `end_s`, admitting staged workloads at their start
/// times; `on_epoch` (optional) observes the system after every epoch.
void run_staged(TieredSystem& sys, std::vector<StagedWorkload> stages,
                double end_s,
                const std::function<void(TieredSystem&)>& on_epoch = {});

}  // namespace vulcan::runtime

// Experiment helpers shared by the benchmark harnesses: policy factory,
// staged workload arrival, the paper's §5.3 co-location scenario
// (Memcached from t=0, PageRank from t=50 s, Liblinear from t=110 s), and
// the parallel experiment batteries (independent deterministic runs fanned
// out across an exec::BatchRunner, merged in submission order).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exec/batch.hpp"
#include "obs/diff.hpp"
#include "runtime/builder.hpp"
#include "runtime/system.hpp"
#include "sim/cost_model.hpp"

namespace vulcan::runtime {

/// Build one of the evaluated systems: "tpp", "memtis", "nomad", "mtm",
/// "cascade", "vulcan". Throws std::invalid_argument for anything else.
std::unique_ptr<policy::SystemPolicy> make_policy(std::string_view name,
                                                  unsigned online_cpus = 32);

/// Every policy name make_policy accepts, Vulcan first then the baselines
/// in paper order — the roster `vulcan_sim --policies all` compares.
std::span<const std::string> all_policy_names();

/// A workload that joins the system at `start_s` simulated seconds and —
/// for fleet-churn scenarios — departs at `end_s` (infinity = stays for
/// the whole run, the historical behaviour).
struct StagedWorkload {
  double start_s = 0.0;
  std::unique_ptr<wl::Workload> workload;
  double end_s = std::numeric_limits<double>::infinity();
};

/// The paper's dynamic co-location timeline (Table 2 workloads).
std::vector<StagedWorkload> paper_colocation(std::uint64_t seed = 1);

/// The two-app cold-page-dilemma co-location (Fig. 1): a latency-critical
/// hot-set service from t=0 joined by a best-effort sequential scanner at
/// t=10 s. Shared by `vulcan_sim --scenario dilemma`, the CI fairness
/// smoke, and the what-if engine's built-in scenario.
std::vector<StagedWorkload> dilemma_colocation(std::uint64_t seed = 42);

/// Drive `sys` until `end_s`, admitting staged workloads at their start
/// times (the vector need not be sorted by start time; same-epoch ties
/// admit in vector order) and retiring them
/// (TieredSystem::remove_workload) once their StagedWorkload::end_s
/// passes; `on_epoch` (optional) observes the system after every epoch.
void run_staged(TieredSystem& sys, std::vector<StagedWorkload> stages,
                double end_s,
                const std::function<void(TieredSystem&)>& on_epoch = {});

// --------------------------------------------------------------- batteries
//
// A battery is a set of independent deterministic runs. Each row/job below
// builds its own registry (and, for full-system runs, its own
// SystemBuilder clone, trace ring and RNG), executes on an
// exec::BatchRunner, and merges in submission order — so battery output is
// byte-identical for any `jobs` count, including 1. Pass `jobs` = 0 for
// hardware concurrency (capped by the row count); pass `stats` to receive
// the real-time accounting (never part of the deterministic results).

/// One Fig. 2 row: the five-phase cost breakdown of a single base-page
/// (4 KB) migration with `cpus` online CPUs, read back from the
/// mig.mechanism.* counters of a fresh obs::Registry.
struct MigrationBreakdownRow {
  unsigned cpus = 0;
  std::uint64_t prep = 0, unmap = 0, shootdown = 0, copy = 0, remap = 0;

  std::uint64_t total() const { return prep + unmap + shootdown + copy + remap; }
  double prep_share() const {
    const std::uint64_t t = total();
    return t ? static_cast<double>(prep) / static_cast<double>(t) : 0.0;
  }
  bool operator==(const MigrationBreakdownRow&) const = default;
};

MigrationBreakdownRow migration_breakdown_row(
    unsigned cpus, const sim::CostModelParams& params = {});

std::vector<MigrationBreakdownRow> migration_breakdown_battery(
    std::span<const unsigned> cpus_list, unsigned jobs = 1,
    exec::BatchStats* stats = nullptr);

/// One Fig. 7 row: total migration cycles for a `pages`-page batch under
/// the baseline mechanism, optimised preparation alone, and preparation +
/// targeted shootdowns (the paper's microbench setting: 32 CPUs online,
/// 8-thread process, per-thread tables proving ~1 sharer).
struct MechanismSpeedupRow {
  std::uint64_t pages = 0;
  std::uint64_t baseline_cycles = 0, prep_opt_cycles = 0, both_cycles = 0;

  double speedup_prep() const {
    return prep_opt_cycles ? static_cast<double>(baseline_cycles) /
                                 static_cast<double>(prep_opt_cycles)
                           : 0.0;
  }
  double speedup_both() const {
    return both_cycles ? static_cast<double>(baseline_cycles) /
                             static_cast<double>(both_cycles)
                       : 0.0;
  }
  bool operator==(const MechanismSpeedupRow&) const = default;
};

MechanismSpeedupRow mechanism_speedup_row(
    std::uint64_t pages, const sim::CostModelParams& params = {});

std::vector<MechanismSpeedupRow> mechanism_speedup_battery(
    std::span<const std::uint64_t> pages_list, unsigned jobs = 1,
    exec::BatchStats* stats = nullptr);

/// A re-runnable full-system scenario for the policy battery. `stage` must
/// rebuild the staged workloads from the seed on every call (each job
/// stages its own copies); `configure` (optional) applies extra builder
/// configuration before the per-job seed and policy are set.
struct ScenarioSpec {
  std::string name = "dilemma";
  double seconds = 20.0;
  std::uint64_t seed = 42;
  std::function<void(SystemBuilder&)> configure;
  std::function<std::vector<StagedWorkload>()> stage;
  /// Capture each run's time-series store (JSONL) into
  /// PolicyRunSummary::timeseries. Off by default: the capture is
  /// deterministic but large, and most batteries never read it.
  bool capture_timeseries = false;
  /// Enable the provenance ledger on each run and capture its finalized
  /// decision/transition JSONL exports into the summary. Off by default
  /// (the ledger changes the registry via mig.abort counters, so digest
  /// consumers opt in explicitly).
  bool capture_provenance = false;
  /// Admission-control ablation: when set, each policy runs TWICE — first
  /// without admission (the summary's regular fields, byte-identical to a
  /// compare-free battery), then again with this spec enabled — and the
  /// with-admission deltas land in PolicyRunSummary::admission. Nothing
  /// else about the battery changes: no forked battery, same scenario,
  /// same per-policy seed.
  std::optional<mig::AdmissionSpec> admission_compare;
};

/// The with-admission half of an admission ablation (see
/// ScenarioSpec::admission_compare). `base_*` mirrors the admission-off
/// run so consumers can print cost deltas without re-deriving them.
struct AdmissionCompare {
  double jain = 1.0;
  double cfi = 1.0;
  /// (workload name, steady-state slowdown), same convention as
  /// PolicyRunSummary::apps.
  std::vector<std::pair<std::string, double>> apps;
  /// Migration cost under admission: pages actually migrated and remote
  /// cores interrupted (summed over workloads).
  std::uint64_t pages_migrated = 0;
  std::uint64_t shootdown_ipis = 0;
  /// The same totals from the admission-off run.
  std::uint64_t base_pages_migrated = 0;
  std::uint64_t base_shootdown_ipis = 0;
  /// Controller verdict totals (adm.admitted / adm.vetoed).
  std::uint64_t admitted = 0;
  std::uint64_t vetoed = 0;
};

/// One policy's end-to-end result over a ScenarioSpec.
struct PolicyRunSummary {
  std::string policy;
  double jain = 1.0;  ///< app.fairness.jain_cumulative
  double cfi = 1.0;   ///< Eq. 4 FTHR-weighted fairness
  /// (workload name, steady-state slowdown) in registration order,
  /// averaged over the second half of the run like `vulcan_sim`.
  std::vector<std::pair<std::string, double>> apps;
  obs::MetricsSnapshot snapshot;  ///< the run's full registry
  /// The run's time-series export (JSONL rows) when the scenario set
  /// capture_timeseries; empty otherwise. Not part of the fuzz digest.
  std::string timeseries;
  /// The run's finalized provenance exports (JSONL rows) when the scenario
  /// set capture_provenance; empty otherwise. Not part of the fuzz digest.
  std::string decisions;
  std::string transitions;
  /// The with-admission rerun when the scenario set admission_compare;
  /// nullopt otherwise. Never part of the fuzz digest.
  std::optional<AdmissionCompare> admission;
};

/// Run `spec` once per policy, fanning the runs out across `jobs` workers.
/// Summaries come back in `policies` order; a policy whose run throws
/// fails the whole battery with a std::runtime_error naming it.
std::vector<PolicyRunSummary> run_policy_battery(
    const ScenarioSpec& spec, std::span<const std::string> policies,
    unsigned jobs = 1, exec::BatchStats* stats = nullptr);

}  // namespace vulcan::runtime

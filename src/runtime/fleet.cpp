#include "runtime/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "sim/rng.hpp"

namespace vulcan::runtime {

namespace {

// Decouples an app's *scheduling* stream (archetype mix, arrival gap,
// lifetime) from its *workload* stream (make_fleet_app uses the raw
// fleet_app_seed), so the two never alias draws.
constexpr std::uint64_t kScheduleSalt = 0x9E3779B97F4A7C15ULL;

}  // namespace

std::vector<StagedWorkload> make_fleet(const FleetSpec& spec) {
  if (spec.apps == 0) return {};
  std::vector<StagedWorkload> stages;
  stages.reserve(spec.apps);

  const double mean_life =
      spec.mean_lifetime_s > 0 ? spec.mean_lifetime_s : spec.seconds * 0.5;
  // churn_per_min counts arrivals + departures; every churned app
  // eventually contributes one of each, so arrivals alone run at half the
  // churn rate.
  const double arrival_gap_s =
      spec.churn_per_min > 0 ? 120.0 / spec.churn_per_min : 0.0;

  // Poisson arrival clock, advanced app by app in id order. Initial-set
  // membership and each arrival gap are drawn from the *arriving* app's
  // own stream, so the schedule for apps 0..k is a pure function of
  // (seed, ids 0..k) — growing the fleet appends apps without moving
  // anyone already scheduled.
  double clock = 0.0;
  for (unsigned id = 0; id < spec.apps; ++id) {
    sim::Rng rng(wl::fleet_app_seed(spec.seed, id) ^ kScheduleSalt);

    const double mix = rng.uniform();
    const wl::FleetArchetype archetype =
        mix < spec.lc_fraction ? wl::FleetArchetype::kLcService
        : mix < spec.lc_fraction + spec.be_fraction
            ? wl::FleetArchetype::kBeBatch
            : wl::FleetArchetype::kAntagonist;

    // App 0 anchors the fleet so a churned run never opens empty.
    const bool initial = arrival_gap_s <= 0.0 || id == 0 ||
                         rng.chance(spec.initial_fraction);
    StagedWorkload stage;
    if (initial) {
      stage.start_s = 0.0;
    } else {
      clock += -arrival_gap_s * std::log(1.0 - rng.uniform());
      stage.start_s = clock;
    }
    if (arrival_gap_s > 0.0) {
      // Exponential lifetime, floored at one second so an app always runs
      // at least a few epochs before retiring.
      const double life =
          std::max(1.0, -mean_life * std::log(1.0 - rng.uniform()));
      stage.end_s = stage.start_s + life;
    }
    stage.workload =
        wl::make_fleet_app(id, archetype, spec.seed, spec.footprint_scale);
    stages.push_back(std::move(stage));
  }
  return stages;
}

obs::TimeSeriesConfig fleet_timeseries_config(double seconds) {
  // Tail-fairness windows: wider than the epoch (several epochs fold into
  // each window) and retained for the whole run.
  obs::TimeSeriesConfig ts;
  ts.window = sim::CpuClock::from_nanos(
      static_cast<std::uint64_t>(kFleetWindowSeconds * 1e9));
  ts.retention =
      static_cast<std::size_t>(seconds / kFleetWindowSeconds) + 8;
  return ts;
}

std::vector<FleetWindowRow> fleet_windows(const obs::TimeSeriesStore& store) {
  // Assemble per-window rows from the three gauges' aligned windows (all
  // are observed at the same epoch boundaries).
  std::map<std::uint64_t, FleetWindowRow> rows;
  if (const obs::Series* s = store.find("app.fairness.worst_slowdown")) {
    for (const obs::SeriesWindow& w : s->windows()) {
      FleetWindowRow& row = rows[w.index];
      row.window = w.index;
      row.worst_slowdown = w.max;
    }
  }
  if (const obs::Series* s = store.find("app.fairness.jain")) {
    for (const obs::SeriesWindow& w : s->windows()) {
      FleetWindowRow& row = rows[w.index];
      row.window = w.index;
      row.jain_min = w.min;
    }
  }
  if (const obs::Series* s = store.find("runtime.live_workloads")) {
    for (const obs::SeriesWindow& w : s->windows()) {
      FleetWindowRow& row = rows[w.index];
      row.window = w.index;
      row.live_apps = w.last;
    }
  }
  std::vector<FleetWindowRow> out;
  out.reserve(rows.size());
  for (auto& [index, row] : rows) {
    row.time_s = static_cast<double>(index) * kFleetWindowSeconds;
    out.push_back(row);
  }
  return out;
}

FleetPolicyResult summarize_fleet_run(TieredSystem& sys, std::string policy) {
  FleetPolicyResult result;
  result.policy = std::move(policy);
  result.jain_cumulative = sys.app_stats().jain_cumulative();
  result.windows = fleet_windows(sys.obs_timeseries());

  std::vector<double> window_worst;
  window_worst.reserve(result.windows.size());
  for (const FleetWindowRow& row : result.windows) {
    result.worst_slowdown_overall =
        std::max(result.worst_slowdown_overall, row.worst_slowdown);
    result.jain_floor = std::min(result.jain_floor, row.jain_min);
    window_worst.push_back(row.worst_slowdown);
  }
  if (!window_worst.empty()) {
    std::sort(window_worst.begin(), window_worst.end());
    const std::size_t at = std::min(
        window_worst.size() - 1,
        static_cast<std::size_t>(
            std::ceil(0.99 * static_cast<double>(window_worst.size())) - 1));
    result.worst_slowdown_p99 = window_worst[at];
  }
  result.snapshot = obs::snapshot_registry(sys.obs_registry());
  return result;
}

std::vector<FleetPolicyResult> run_fleet_battery(
    const FleetSpec& spec, std::span<const std::string> policies,
    unsigned jobs, exec::BatchStats* stats) {
  exec::BatchRunner runner(jobs);
  std::vector<std::function<FleetPolicyResult()>> batch;
  batch.reserve(policies.size());
  for (const std::string& policy : policies) {
    batch.push_back([&spec, policy] {
      const auto run_once = [&spec, &policy](bool with_admission) {
        SystemBuilder b;
        b.timeseries(fleet_timeseries_config(spec.seconds));
        if (with_admission) {
          mig::AdmissionSpec adm = *spec.admission_compare;
          adm.enabled = true;  // compare mode means "on", always
          b.admission(adm);
        }
        b.seed(spec.seed).policy(std::string_view(policy));
        BuildResult built = b.build();
        if (!built) {
          throw std::runtime_error(policy + ": " + built.error());
        }
        std::unique_ptr<TieredSystem> sys = std::move(built.value());
        run_staged(*sys, make_fleet(spec), spec.seconds);
        return sys;
      };
      const auto migration_cost = [](TieredSystem& s, std::uint64_t& pages,
                                     std::uint64_t& ipis) {
        pages = ipis = 0;
        for (unsigned w = 0; w < s.workload_count(); ++w) {
          const mig::MigrationStats& t = s.migrator(w).totals();
          pages += t.migrated;
          ipis += t.shootdown_ipis;
        }
      };

      // Admission-off run first: its artefacts are the result's regular
      // fields whether or not a compare rerun follows.
      std::unique_ptr<TieredSystem> sys = run_once(false);
      FleetPolicyResult result = summarize_fleet_run(*sys, policy);
      if (spec.admission_compare) {
        FleetAdmissionCompare cmp;
        migration_cost(*sys, cmp.base_pages_migrated,
                       cmp.base_shootdown_ipis);
        const std::unique_ptr<TieredSystem> on = run_once(true);
        const FleetPolicyResult with = summarize_fleet_run(*on, policy);
        cmp.jain_cumulative = with.jain_cumulative;
        cmp.worst_slowdown_overall = with.worst_slowdown_overall;
        cmp.worst_slowdown_p99 = with.worst_slowdown_p99;
        cmp.jain_floor = with.jain_floor;
        migration_cost(*on, cmp.pages_migrated, cmp.shootdown_ipis);
        const mig::AdmissionController* ctl = on->admission_controller();
        cmp.admitted = ctl ? ctl->admitted() : 0;
        cmp.vetoed = ctl ? ctl->vetoed() : 0;
        result.admission = cmp;
      }
      return result;
    });
  }
  auto results = exec::values_or_throw(runner.run(std::move(batch)),
                                       "fleet battery");
  if (stats) *stats = runner.stats();
  return results;
}

}  // namespace vulcan::runtime

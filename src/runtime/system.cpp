#include "runtime/system.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "prof/hint_fault.hpp"

namespace vulcan::runtime {

TieredSystem::TieredSystem(Config config,
                           std::unique_ptr<policy::SystemPolicy> policy)
    : config_(config),
      trace_(config.trace_capacity),
      provenance_(config.provenance),
      policy_(std::move(policy)),
      topo_(std::make_unique<mem::Topology>(
          config.custom_tiers.has_value()
              ? mem::Topology(*config.custom_tiers,
                              config.machine.slow_bw_gbps)
              : mem::Topology::paper_testbed(config.machine))),
      cost_(config.cost_params),
      rng_(config.seed) {
  if (config_.record_spans) {
    spans_ = obs::SpanRecorder(&trace_, &now_);
    app_stats_ = obs::AppStats(&registry_);
    spans_.set_sink(&app_stats_);
  }
  obs::SpanRecorder* spans = config_.record_spans ? &spans_ : nullptr;
  const obs::Scope root(&registry_, &trace_, &now_, "", -1, spans);
  vm::Mmu::Config mmu_cfg;
  mmu_cfg.cores = config_.machine.cores;
  mmu_cfg.pwc_enabled = config_.pwc;
  mmu_ = std::make_unique<vm::Mmu>(mmu_cfg);
  mmu_->set_obs(root.sub("vm.tlb"));
  shootdowns_ = std::make_unique<vm::ShootdownController>(cost_, mmu_.get());
  shootdowns_->set_obs(root.sub("vm.shootdown"));
  policy_->set_obs(root.sub("policy"));
  if (config_.admission.enabled) {
    // One controller shared by every workload's migrator, so the veto
    // ledger and adm.* counters aggregate fleet-wide. Constructed only
    // when enabled: an admission-off run registers no adm.* keys and its
    // snapshot stays byte-identical to an admission-free build.
    admission_.emplace(config_.admission, config_.cost_params);
    admission_->set_obs(root.sub("adm"), std::string(policy_->name()));
  }
  tier_utilization_.assign(topo_->tier_count(), 0.0);
  // Telemetry storey (obs/timeseries, obs/slo, obs/flightrec): the store
  // reads the registry at epoch boundaries, the monitor is opt-in via
  // slo_rules (its counters enter the snapshot), and the flight recorder
  // watches everything through non-owning pointers to the members above.
  obs::TimeSeriesConfig ts_cfg = config_.timeseries;
  ts_cfg.enabled = ts_cfg.enabled && config_.telemetry;
  timeseries_ = obs::TimeSeriesStore(ts_cfg);
  if (config_.telemetry && !config_.slo_rules.empty()) {
    slo_.emplace(config_.slo_rules, config_.epoch);
  }
  if (config_.telemetry) {
    obs::FlightConfig flight_cfg;
    flight_cfg.epochs = config_.flight_epochs;
    flight_cfg.epoch = config_.epoch;
    flight_cfg.dump_path = config_.flight_dump_path;
    flight_ = obs::FlightRecorder(flight_cfg, &registry_, &trace_,
                                  &timeseries_, slo_ ? &*slo_ : nullptr,
                                  &last_audit_,
                                  provenance_.enabled() ? &provenance_
                                                        : nullptr);
  }
  if (config_.migration_budget_override > 0) {
    migration_budget_ = config_.migration_budget_override;
  } else {
    // Half the inter-tier link bandwidth (capacity-scaled) over one epoch:
    // kernels throttle migration so demand traffic is never fully starved,
    // and migration bytes feed back into the loaded-latency model.
    const double epoch_s = sim::CpuClock::to_seconds(config_.epoch);
    const double bytes = 0.5 * config_.machine.slow_bw_gbps * 1e9 /
                         static_cast<double>(sim::kCapacityScale) * epoch_s;
    migration_budget_ = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(bytes / sim::kPageSize));
  }
}

TieredSystem::~TieredSystem() = default;

std::unique_ptr<prof::Profiler> TieredSystem::make_profiler(
    prof::HeatTracker& tracker, ProfilerKind kind) {
  // The simulated access stream is itself a sample of the real stream, so
  // sampling periods are kept low relative to hardware-PEBS settings.
  switch (kind) {
    case ProfilerKind::kPebs:
      return std::make_unique<prof::PebsProfiler>(tracker, /*period=*/8);
    case ProfilerKind::kPtScan:
      return std::make_unique<prof::PtScanProfiler>(tracker);
    case ProfilerKind::kHintFault:
      return std::make_unique<prof::HintFaultProfiler>(tracker, cost_,
                                                       /*poison=*/0.10);
    case ProfilerKind::kTelescope:
      return std::make_unique<prof::TelescopeProfiler>(tracker);
    case ProfilerKind::kChrono:
      return std::make_unique<prof::ChronoProfiler>(tracker);
    case ProfilerKind::kHybrid:
      break;
  }
  return std::make_unique<prof::HybridProfiler>(tracker, cost_,
                                                /*pebs_period=*/4,
                                                /*poison_fraction=*/0.05);
}

unsigned TieredSystem::add_workload(std::unique_ptr<wl::Workload> workload,
                                    std::optional<ProfilerKind> profiler) {
  const auto index = static_cast<unsigned>(workloads_.size());
  auto mw = std::make_unique<ManagedWorkload>();
  mw->workload = std::move(workload);
  const auto& spec = mw->workload->spec();

  vm::AddressSpace::Config as_cfg;
  as_cfg.pid = index + 1;
  as_cfg.rss_pages = spec.rss_pages;
  as_cfg.thp = config_.thp;
  // Per-thread replication follows the policy's mechanism choice.
  as_cfg.replicate_tables =
      policy_->migrator_config().mechanism.targeted_shootdown;
  mw->as = std::make_unique<vm::AddressSpace>(as_cfg, *topo_);
  for (unsigned t = 0; t < spec.threads; ++t) mw->as->add_thread();

  mw->tracker =
      std::make_unique<prof::HeatTracker>(spec.rss_pages, config_.heat_decay);
  mw->profiler =
      make_profiler(*mw->tracker, profiler.value_or(config_.profiler));

  // Dedicated cores, assigned round-robin over the socket.
  for (unsigned c = 0; c < config_.cores_per_workload; ++c) {
    mw->cores.push_back(
        static_cast<vm::CoreId>((next_core_ + c) % config_.machine.cores));
  }
  next_core_ = (next_core_ + config_.cores_per_workload) %
               config_.machine.cores;

  mig::Migrator::Config mig_cfg = policy_->migrator_config();
  mig_cfg.process_cores = mw->cores;
  mig_cfg.daemon_core = mw->cores.back();
  mw->migrator = std::make_unique<mig::Migrator>(*mw->as, *topo_,
                                                 *shootdowns_, cost_, mig_cfg);
  mw->migrator->set_obs(obs::Scope(
      &registry_, &trace_, &now_, "mig", static_cast<std::int32_t>(index),
      config_.record_spans ? &spans_ : nullptr));
  mw->migrator->set_provenance(&provenance_, static_cast<std::int32_t>(index));
  mw->migrator->set_admission(admission_ ? &*admission_ : nullptr);
  mw->migration_thread = std::make_unique<mig::MigrationThread>(*mw->migrator);

  policy::WorkloadView view;
  view.index = index;
  view.workload = workloads_.emplace_back(std::move(mw))->workload.get();
  auto& stored = *workloads_.back();
  view.as = stored.as.get();
  view.tracker = stored.tracker.get();
  view.migration = stored.migration_thread.get();
  view.ledger = provenance_.enabled() ? &provenance_ : nullptr;
  views_.push_back(view);
  return index;
}

void TieredSystem::remove_workload(unsigned w) {
  ManagedWorkload& mw = *workloads_[w];
  if (mw.departed) return;
  // Teardown order matters: queued plans first (they reference pages about
  // to vanish), then shadow frames (allocator-owned but unmapped), then the
  // ledger's residency view (while the pages are still mapped), then the
  // mappings themselves, and finally every cached translation for the pid.
  mw.migration_thread->clear_backlog();
  const std::uint64_t shadows_freed = mw.migrator->shadows().size();
  mw.migrator->shadows().clear();
  if (provenance_.enabled()) {
    const auto app = static_cast<std::int32_t>(w);
    // Collect first: recording a release erases the ledger's entry, so
    // transitions cannot be recorded mid-visit.
    std::vector<std::pair<std::uint64_t, std::int32_t>> resident;
    provenance_.for_each_residency(
        app, [&](std::uint64_t page, std::int32_t tier) {
          resident.emplace_back(page, tier);
        });
    for (const auto& [page, tier] : resident) {
      provenance_.record_transition(app, page, tier, /*to_tier=*/-1,
                                    /*cause=*/0);
    }
  }
  const std::uint64_t released = mw.as->release_all();
  mmu_->invalidate_process(mw.as->pid());
  policy_->on_workload_departed(w);
  mw.departed = true;
  const obs::Scope root(&registry_, &trace_, &now_, "runtime", -1,
                        config_.record_spans ? &spans_ : nullptr);
  root.for_workload(static_cast<std::int32_t>(w))
      .event(obs::EventKind::kWorkloadDeparted, released, shadows_freed);
  root.counter("workloads_departed").inc();
}

std::size_t TieredSystem::live_workload_count() const {
  std::size_t live = 0;
  for (const auto& mw : workloads_) {
    if (!mw->departed) ++live;
  }
  return live;
}

void TieredSystem::simulate_accesses(ManagedWorkload& mw,
                                     double epoch_seconds,
                                     std::uint64_t sample_quota) {
  wl::Workload& w = *mw.workload;
  const auto& spec = w.spec();
  const double rate =
      w.total_access_rate() * w.rate_multiplier(now_seconds());
  const double real_accesses = rate * epoch_seconds;
  const std::uint64_t samples = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(sample_quota,
                                 static_cast<std::uint64_t>(real_accesses)));
  const double weight = real_accesses / static_cast<double>(samples);

  const policy::WorkloadView view_for_placement = views_[mw.as->pid() - 1];
  vm::AddressSpace& as = *mw.as;
  const vm::Vpn base = as.base_vpn();
  const bool shadowing = mw.migrator->config().shadowing;

  // Loaded latencies from last epoch's utilisation (one-epoch lag).
  std::array<double, 8> tier_latency{};
  for (std::size_t t = 0; t < topo_->tier_count(); ++t) {
    tier_latency[t] = static_cast<double>(
        topo_->latency_model(static_cast<mem::TierId>(t))
            .loaded_latency_ns(tier_utilization_[t]));
  }

  // Batched pipeline through the vm::Mmu facade. Three phases per batch:
  //
  //   (a) generate   — drain the workload's access stream (workload RNG
  //                    only) into the reused batch buffer;
  //   (b) translate  — TLB lookup, PWC-accelerated walk, demand faults and
  //                    A/D recording, in stream order. The write hook runs
  //                    inline so shadow invalidation (which returns frames
  //                    to the allocator) interleaves exactly as in the
  //                    single-event pipeline;
  //   (c) account    — latency/tier accounting plus profiler observation,
  //                    the sole consumer of the system RNG.
  //
  // No phase reads state another phase of a *different* sample writes, so
  // the batch size is behavior-neutral (the fuzz oracle varies it).
  const double walk_ns = sim::CpuClock::to_nanos(cost_.tlb_miss_walk());
  const std::uint64_t batch_max =
      std::max<std::uint64_t>(1, config_.translate_batch);
  const vm::Mmu::PlacementFn place = [&](vm::Vpn) {
    return policy_->placement_tier(view_for_placement, *topo_);
  };
  vm::Mmu::AccessHook write_hook;
  if (shadowing) {
    write_hook = [&](const vm::Mmu::Access& a, const vm::Mmu::Translation&) {
      if (a.is_write) mw.migrator->on_write(a.vpn);
    };
  }

  // Round-robin thread cursor, carried across batches (== (done+i) %
  // threads without a per-sample modulo).
  unsigned thread_cursor = 0;
  for (std::uint64_t done = 0; done < samples;) {
    const std::uint64_t n = std::min(batch_max, samples - done);
    access_batch_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      const unsigned thread = thread_cursor;
      if (++thread_cursor == spec.threads) thread_cursor = 0;
      const wl::WorkloadAccess acc = w.next_access(thread);
      access_batch_.push_back(
          {.vpn = base + acc.page,
           .core = mw.cores[thread % mw.cores.size()],
           .thread = static_cast<vm::ThreadId>(thread),
           .is_write = acc.is_write});
    }

    mmu_->translate_batch(as, access_batch_, place, translation_batch_,
                          write_hook);

    for (std::uint64_t i = 0; i < n; ++i) {
      const vm::Mmu::Access& a = access_batch_[i];
      const vm::Mmu::Translation& t = translation_batch_[i];
      double extra_ns = 0.0;
      if (!t.tlb_hit) {
        extra_ns = walk_ns;
        // One demand fault per page, regardless of the sample's weight.
        // (A fault on the TLB-hit path — defensive, "cannot happen" — is
        // deliberately uncharged, matching the pre-facade engine.)
        if (t.faulted) {
          mw.epoch_inline_overhead += cost_.minor_fault();
          if (provenance_.enabled()) record_fault_alloc(as, a.vpn);
        }
      }

      const mem::TierId tier = mem::tier_of(t.pte.pfn());
      const double lat_ns = tier_latency[tier] + extra_ns;
      if (tier == mem::kFastTier) {
        mw.epoch_fast += weight;
      } else {
        mw.epoch_slow += weight;
      }
      mw.epoch_latency_weighted += lat_ns * weight;

      // Profiler-imposed costs (hint faults) fire once per physical event,
      // not once per represented access: charge unweighted.
      mw.epoch_inline_overhead += mw.profiler->observe(
          {.page = a.vpn - base,
           .thread = static_cast<unsigned>(a.thread),
           .is_write = a.is_write},
          weight, rng_);
    }
    done += n;
  }
}

void TieredSystem::run_one_epoch() {
  const double epoch_seconds = sim::CpuClock::to_seconds(config_.epoch);
  const obs::Scope root(&registry_, &trace_, &now_, "runtime", -1,
                        config_.record_spans ? &spans_ : nullptr);
  root.event(obs::EventKind::kEpochStart, epoch_index_, workloads_.size());
  provenance_.begin_epoch(epoch_index_);
  obs::ScopedSpan epoch_span =
      root.span(obs::SpanKind::kEpoch, static_cast<double>(epoch_index_));

  // (1) Access generation + accounting. Sample quotas are proportional to
  // each workload's access rate (the fastest workload gets the configured
  // budget), so sample *weights* — and therefore heat magnitudes and the
  // number of distinct pages observed per epoch — are comparable across
  // workloads, exactly as raw hardware events would be.
  double max_rate = 0.0;
  for (auto& mw : workloads_) {
    if (mw->departed) continue;
    max_rate = std::max(max_rate, mw->workload->total_access_rate() *
                                      mw->workload->rate_multiplier(
                                          now_seconds()));
  }
  for (auto& mw : workloads_) {
    // Scratch resets unconditionally so step 6 reads zeros for departed
    // slots instead of their final live epoch.
    mw->epoch_fast = mw->epoch_slow = 0.0;
    mw->epoch_latency_weighted = 0.0;
    mw->epoch_inline_overhead = 0;
    mw->epoch_migration = {};
    if (mw->departed) continue;
    mw->workload->on_epoch(now_seconds());
    const double rate = mw->workload->total_access_rate() *
                        mw->workload->rate_multiplier(now_seconds());
    const auto quota = static_cast<std::uint64_t>(
        static_cast<double>(config_.samples_per_epoch) *
        (max_rate > 0 ? rate / max_rate : 1.0));
    simulate_accesses(*mw, epoch_seconds, std::max<std::uint64_t>(1, quota));
  }

  // (2) Tier utilisation for next epoch's loaded latencies: 64 B per
  // demand access, plus the previous epoch's migration traffic — every
  // migrated byte is read from one tier and written to the other, so it
  // loads both. (This epoch's migrations run in step 5; like the demand
  // side, their load shows up with a one-epoch lag.)
  for (std::size_t t = 0; t < topo_->tier_count(); ++t) {
    double bytes = last_migration_bytes_;
    for (const auto& mw : workloads_) {
      const double accesses =
          t == mem::kFastTier ? mw->epoch_fast : mw->epoch_slow;
      bytes += accesses * 64.0;
    }
    // Capacity scaling shrinks footprints, not rates; bandwidth is
    // unscaled, so utilisation uses real byte rates.
    tier_utilization_[t] =
        topo_->latency_model(static_cast<mem::TierId>(t))
            .utilization(bytes, epoch_seconds * 1e9);
    // Publish so contention-aware policies (Colloid gating) can read it.
    topo_->set_utilization(static_cast<mem::TierId>(t),
                           tier_utilization_[t]);
  }

  // (3) Profiler epoch work (scans, re-poisoning).
  for (auto& mw : workloads_) {
    if (mw->departed) continue;
    mw->epoch_migration.daemon_cycles += mw->profiler->on_epoch(*mw->as);
  }

  // (4) Policy planning over fresh views (pointers were fixed at
  // add_workload; only the epoch census changes). The policy sees only the
  // live subset — a departed slot never reaches plan_epoch again — and the
  // planned quotas are copied back by index afterwards.
  for (std::size_t i = 0; i < workloads_.size(); ++i) {
    views_[i].epoch_fast_accesses = workloads_[i]->epoch_fast;
    views_[i].epoch_slow_accesses = workloads_[i]->epoch_slow;
  }
  active_views_.clear();
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (!workloads_[i]->departed) active_views_.push_back(views_[i]);
  }
  {
    // The policy span wraps whichever SystemPolicy is installed; Vulcan's
    // manager nests its per-workload plan spans inside it.
    obs::ScopedSpan policy_span = root.span(obs::SpanKind::kPolicy);
    policy_->plan_epoch(active_views_, *topo_, rng_);
  }
  for (const policy::WorkloadView& v : active_views_) views_[v.index] = v;
  // Quota decisions become part of the structured trace regardless of
  // which policy produced them (baselines leave quotas unbounded).
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (workloads_[i]->departed) continue;
    root.for_workload(static_cast<std::int32_t>(i))
        .event(obs::EventKind::kPolicyQuota, views_[i].fast_quota,
               workloads_[i]->as->pages_in_tier(mem::kFastTier));
  }

  // (5) Execute migrations within the epoch's link budget, split across
  // workloads proportionally to backlog.
  std::uint64_t total_backlog = 0;
  for (const auto& mw : workloads_) {
    if (mw->departed) continue;
    total_backlog += mw->migration_thread->backlog();
  }
  if (total_backlog > 0) {
    for (auto& mw : workloads_) {
      if (mw->departed) continue;
      const std::uint64_t share = std::max<std::uint64_t>(
          1, migration_budget_ * mw->migration_thread->backlog() /
                 total_backlog);
      mw->epoch_migration += mw->migration_thread->run_epoch(share, rng_);
    }
  }
  last_migration_bytes_ = 0.0;
  for (const auto& mw : workloads_) {
    // Capacity scaling shrinks footprints, not the per-page transfer, so
    // unscale to real link traffic.
    last_migration_bytes_ +=
        static_cast<double>(mw->epoch_migration.bytes_copied) *
        static_cast<double>(sim::kCapacityScale);
  }

  // (6) Metrics: per-workload performance and FTHR; CFI accumulation.
  EpochMetrics epoch;
  epoch.time_s = now_seconds();
  std::vector<double> alloc_shares, fthrs;
  std::vector<obs::AppEpochSample> app_samples;
  for (std::size_t i = 0; i < workloads_.size(); ++i) {
    auto& mw = *workloads_[i];
    if (mw.departed) {
      // Keep the row (per-epoch metrics are index-aligned) but leave it
      // zeroed. The CFI accumulator is index-aligned too: a departed app
      // contributes nothing this epoch but its pre-departure cumulative
      // weighted allocation stays in the Eq. 4 population.
      epoch.workloads.emplace_back();
      alloc_shares.push_back(0.0);
      fthrs.push_back(0.0);
      continue;
    }
    WorkloadEpochMetrics m;
    const double total_accesses = mw.epoch_fast + mw.epoch_slow;
    m.accesses = total_accesses;
    m.fthr = total_accesses > 0 ? mw.epoch_fast / total_accesses : 0.0;
    m.avg_latency_ns =
        total_accesses > 0 ? mw.epoch_latency_weighted / total_accesses : 0.0;

    const wl::Workload& w = *mw.workload;
    const double ideal_cpa = w.ideal_cycles_per_access(
        static_cast<double>(config_.machine.fast_latency_ns));
    double actual_cpa = w.cycles_per_access(m.avg_latency_ns);
    if (total_accesses > 0) {
      double overhead = static_cast<double>(mw.epoch_migration.stall_cycles +
                                            mw.epoch_inline_overhead);
      if (config_.charge_daemon_to_app) {
        overhead += static_cast<double>(mw.epoch_migration.daemon_cycles);
      }
      actual_cpa += overhead / total_accesses;
    }
    m.performance = actual_cpa > 0 ? ideal_cpa / actual_cpa : 1.0;

    m.fast_pages = mw.as->pages_in_tier(mem::kFastTier);
    // "Slow" aggregates every non-top tier (exact for two tiers, the sum
    // of the lower tiers otherwise).
    m.slow_pages = mw.as->faulted_pages() - m.fast_pages;
    m.quota = views_[i].fast_quota;
    m.stall_cycles = mw.epoch_migration.stall_cycles;
    m.daemon_cycles = mw.epoch_migration.daemon_cycles;
    m.migrated = mw.epoch_migration.migrated;
    m.failed_migrations = mw.epoch_migration.failed;
    m.shadow_remaps = mw.epoch_migration.shadow_remaps;
    epoch.workloads.push_back(m);

    alloc_shares.push_back(static_cast<double>(m.fast_pages));
    fthrs.push_back(m.fthr);

    obs::AppEpochSample sample;
    sample.app = static_cast<std::int32_t>(i);
    sample.fast_pages = m.fast_pages;
    sample.stall_cycles = m.stall_cycles;
    sample.daemon_cycles = m.daemon_cycles;
    sample.shootdown_ipis = mw.epoch_migration.shootdown_ipis;
    sample.slowdown = m.performance > 0 ? 1.0 / m.performance : 1.0;
    app_samples.push_back(sample);
  }
  cfi_.record_epoch(alloc_shares, fthrs);
  metrics_.record(std::move(epoch));
  if (app_stats_.active()) app_stats_.record_epoch(app_samples);

  // Registry snapshot of the system-level signals the figures explain.
  root.counter("epochs").inc();
  registry_.gauge("core.fairness.cfi").set(cfi_.cfi());
  // Fleet churn signal: how many admitted workloads are still live. The
  // fleet battery windows this alongside the tail-fairness gauges.
  registry_.gauge("runtime.live_workloads")
      .set(static_cast<double>(live_workload_count()));
  for (std::size_t t = 0; t < topo_->tier_count(); ++t) {
    registry_
        .gauge("mem.tier_utilization{tier=" + std::to_string(t) + "}")
        .set(tier_utilization_[t]);
  }
  // Satellite of the trace ring: overflow is visible in the registry too,
  // so exporters (and CI) can warn that a serialized trace lost events.
  if (trace_.dropped() > dropped_reported_) {
    registry_.counter("obs.trace.dropped_events")
        .inc(trace_.dropped() - dropped_reported_);
    dropped_reported_ = trace_.dropped();
  }
  root.event(obs::EventKind::kEpochEnd, epoch_index_, workloads_.size(),
             cfi_.cfi());
  ++epoch_index_;

  // (7) Heat decay closes the epoch.
  for (auto& mw : workloads_) {
    if (!mw->departed) mw->tracker->decay_epoch();
  }

  // (8) Epoch-boundary telemetry. The time-series hook runs at the same
  // consistency point the invariant auditor audits — every counter below
  // is final for the epoch — so interleaved readers never observe a torn
  // window (obs_timeseries_test pins store totals to registry counters).
  if (timeseries_.enabled()) timeseries_.observe(registry_, now_);
  if (slo_) {
    const obs::SloEvalResult slo_eval =
        slo_->evaluate(timeseries_, registry_, &trace_, now_);
    if (slo_eval.fired > 0 &&
        slo_eval.max_fired == obs::SloSeverity::kCritical) {
      flight_.auto_dump({.reason = "slo_critical",
                         .cause = "SLO rule fired at critical severity",
                         .epoch = epoch_index_,
                         .now = now_});
    }
  }

  // (9) Invariant audit (check/invariants.hpp): cross-validate every
  // redundant view of machine state while the epoch's clock is current.
  if (config_.audit != check::AuditLevel::kOff && config_.audit_every > 0 &&
      epoch_index_ % config_.audit_every == 0) {
    run_audit_internal(config_.audit_throw);
  }

  now_ += config_.epoch;
  // Close the epoch span at the advanced clock (or at the timeline cursor
  // if in-epoch work overran the epoch), so consecutive epoch spans tile
  // the run without overlap.
  spans_.sync();
  epoch_span.end();
}

void TieredSystem::run_epochs(unsigned count) {
  for (unsigned i = 0; i < count; ++i) {
    try {
      run_one_epoch();
    } catch (const check::AuditFailure&) {
      throw;  // the audit site already took the flight dump
    } catch (const std::exception& e) {
      flight_.auto_dump({.reason = "engine_exception",
                         .cause = e.what(),
                         .epoch = epoch_index_,
                         .now = now_});
      throw;
    }
  }
}

bool TieredSystem::dump_flight(const std::string& path,
                               const std::string& reason,
                               const std::string& cause) {
  return flight_.dump_file(path, {.reason = reason,
                                  .cause = cause,
                                  .epoch = epoch_index_,
                                  .now = now_});
}

check::SystemView TieredSystem::audit_view() const {
  check::SystemView view;
  view.topology = topo_.get();
  view.workloads.reserve(workloads_.size());
  for (std::size_t i = 0; i < workloads_.size(); ++i) {
    check::WorkloadView w;
    w.index = i;
    w.as = workloads_[i]->as.get();
    w.migrator = workloads_[i]->migrator.get();
    w.departed = workloads_[i]->departed;
    view.workloads.push_back(w);
  }
  view.tlbs = &mmu_->tlbs();
  view.mmu = mmu_.get();
  view.shootdowns = shootdowns_.get();
  view.registry = &registry_;
  view.epochs_run = epoch_index_;
  view.provenance = provenance_.enabled() ? &provenance_ : nullptr;
  return view;
}

const check::AuditReport& TieredSystem::run_audit() {
  return run_audit_internal(config_.audit_throw);
}

const check::AuditReport& TieredSystem::run_audit_internal(
    bool throw_on_failure) {
  const check::InvariantAuditor auditor(config_.audit == check::AuditLevel::kOff
                                            ? check::AuditLevel::kFull
                                            : config_.audit);
  last_audit_ = auditor.audit(audit_view());
  const obs::Scope scope(&registry_, &trace_, &now_, "check", -1,
                         config_.record_spans ? &spans_ : nullptr);
  scope.counter("audits").inc();
  if (last_audit_.ok()) {
    scope.event(obs::EventKind::kAuditPass, last_audit_.checks,
                last_audit_.violations.size());
  } else {
    scope.counter("violations").inc(last_audit_.violations.size());
    for (const check::Violation& v : last_audit_.violations) {
      scope.for_workload(v.workload)
          .event(obs::EventKind::kAuditViolation,
                 static_cast<std::uint64_t>(v.rule), v.detail, v.value);
    }
  }
  if (throw_on_failure && !last_audit_.ok()) {
    // Black-box drill: capture the flight dump before the stack unwinds,
    // while every subsystem still holds the failing state.
    flight_.auto_dump({.reason = "audit_failure",
                       .cause = last_audit_.violations.front().message,
                       .epoch = epoch_index_,
                       .now = now_});
    throw check::AuditFailure(last_audit_);
  }
  return last_audit_;
}

void TieredSystem::prefault(unsigned w, unsigned fast_stride,
                            unsigned slow_stride) {
  auto& mw = *workloads_[w];
  vm::AddressSpace& as = *mw.as;
  const unsigned period = std::max(1u, fast_stride + slow_stride);
  for (std::uint64_t p = 0; p < as.rss_pages(); ++p) {
    const vm::Vpn vpn = as.vpn_at(p);
    if (as.mapped(vpn)) continue;
    const bool want_fast = (p % period) < fast_stride;
    const mem::TierId tier = want_fast && topo_->free_pages(mem::kFastTier) > 0
                                 ? mem::kFastTier
                                 : mem::kSlowTier;
    as.fault(vpn, static_cast<vm::ThreadId>(p % mw.workload->spec().threads),
             /*write=*/false, tier);
    if (provenance_.enabled()) record_fault_alloc(as, vpn);
  }
}

void TieredSystem::record_fault_alloc(vm::AddressSpace& as, vm::Vpn vpn) {
  const vm::Vpn base = as.base_vpn();
  const auto app = static_cast<std::int32_t>(as.pid() - 1);
  const std::uint64_t first =
      (vpn - base) & ~static_cast<std::uint64_t>(sim::kPagesPerHuge - 1);
  const std::uint64_t last =
      std::min<std::uint64_t>(first + sim::kPagesPerHuge, as.rss_pages());
  for (std::uint64_t p = first; p < last; ++p) {
    if (provenance_.known(app, p)) continue;
    const vm::Pte pte = as.tables().get(base + p);
    if (!pte.present()) continue;
    provenance_.record_transition(
        app, p, /*from_tier=*/-1,
        static_cast<std::int32_t>(mem::tier_of(pte.pfn())), /*cause=*/0);
  }
}

}  // namespace vulcan::runtime

// Multi-trial experiment statistics: the paper reports means with 95%
// confidence intervals over repeated seeded trials; this helper runs the
// trials and produces those numbers for any scalar metric.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>

#include "sim/stats.hpp"

namespace vulcan::runtime {

/// Half-width of the 95% confidence interval of the mean, using the
/// normal approximation for n >= 30 and Student-t critical values below
/// (adequate for experiment error bars).
inline double ci95_halfwidth(const sim::RunningStat& stat) {
  const auto n = stat.count();
  if (n < 2) return 0.0;
  // Two-sided t_{0.975} critical values for small samples.
  static constexpr double kT[] = {0,     0,     12.71, 4.303, 3.182, 2.776,
                                  2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
                                  2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
                                  2.110, 2.101, 2.093};
  const double t = n <= 20 ? kT[n] : 1.96;
  // Sample (not population) standard deviation.
  const double var_sample =
      stat.variance() * static_cast<double>(n) / static_cast<double>(n - 1);
  return t * std::sqrt(var_sample / static_cast<double>(n));
}

/// Runs `fn(seed)` once per trial with seeds base, base+1, ... and
/// accumulates the returned scalar.
class TrialRunner {
 public:
  explicit TrialRunner(unsigned trials, std::uint64_t base_seed = 100)
      : trials_(trials), base_seed_(base_seed) {}

  sim::RunningStat run(const std::function<double(std::uint64_t)>& fn) const {
    sim::RunningStat stat;
    for (unsigned t = 0; t < trials_; ++t) {
      stat.add(fn(base_seed_ + t));
    }
    return stat;
  }

  unsigned trials() const { return trials_; }

 private:
  unsigned trials_;
  std::uint64_t base_seed_;
};

}  // namespace vulcan::runtime

#include "runtime/experiment.hpp"

#include <stdexcept>
#include <string>

#include "core/manager.hpp"
#include "policy/cascade.hpp"
#include "policy/memtis.hpp"
#include "policy/mtm.hpp"
#include "policy/nomad.hpp"
#include "policy/tpp.hpp"
#include "wl/apps.hpp"

namespace vulcan::runtime {

std::unique_ptr<policy::SystemPolicy> make_policy(std::string_view name,
                                                  unsigned online_cpus) {
  if (name == "tpp") {
    policy::TppPolicy::Params p;
    p.online_cpus = online_cpus;
    return std::make_unique<policy::TppPolicy>(p);
  }
  if (name == "memtis") {
    policy::MemtisPolicy::Params p;
    p.online_cpus = online_cpus;
    return std::make_unique<policy::MemtisPolicy>(p);
  }
  if (name == "nomad") {
    policy::NomadPolicy::Params p;
    p.online_cpus = online_cpus;
    return std::make_unique<policy::NomadPolicy>(p);
  }
  if (name == "mtm") {
    policy::MtmPolicy::Params p;
    p.online_cpus = online_cpus;
    return std::make_unique<policy::MtmPolicy>(p);
  }
  if (name == "cascade") {
    policy::CascadePolicy::Params p;
    p.online_cpus = online_cpus;
    return std::make_unique<policy::CascadePolicy>(p);
  }
  if (name == "vulcan") {
    core::VulcanManager::Params p;
    p.online_cpus = online_cpus;
    return std::make_unique<core::VulcanManager>(p);
  }
  throw std::invalid_argument("unknown policy: " + std::string(name));
}

std::vector<StagedWorkload> paper_colocation(std::uint64_t seed) {
  std::vector<StagedWorkload> stages;
  stages.push_back({0.0, wl::make_memcached(seed * 1000 + 101)});
  stages.push_back({50.0, wl::make_pagerank(seed * 1000 + 202)});
  stages.push_back({110.0, wl::make_liblinear(seed * 1000 + 303)});
  return stages;
}

namespace {

std::unique_ptr<wl::Workload> dilemma_lc(std::uint64_t seed) {
  wl::WorkloadSpec s;
  s.name = "lc-service";
  s.service_class = wl::ServiceClass::kLatencyCritical;
  s.rss_pages = 8192;
  s.wss_pages = 8192;
  s.threads = 8;
  s.accesses_per_sec_per_thread = 2e5;
  s.latency_exposure = 1.0;
  s.shared_access_fraction = 1.0;
  return std::make_unique<wl::Workload>(
      s, s.rss_pages,
      std::make_unique<wl::HotsetPattern>(s.rss_pages, 0.10, 0.90, 0.10),
      std::make_unique<wl::UniformPattern>(s.rss_pages, 0.10), seed);
}

std::unique_ptr<wl::Workload> dilemma_be(std::uint64_t seed) {
  wl::WorkloadSpec s;
  s.name = "be-scanner";
  s.rss_pages = 12'288;
  s.wss_pages = 12'288;
  s.threads = 8;
  s.accesses_per_sec_per_thread = 6e6;
  s.latency_exposure = 0.3;
  s.shared_access_fraction = 1.0;
  return std::make_unique<wl::Workload>(
      s, s.rss_pages,
      std::make_unique<wl::SequentialPattern>(s.rss_pages, 0.05),
      std::make_unique<wl::UniformPattern>(s.rss_pages, 0.05), seed);
}

}  // namespace

std::vector<StagedWorkload> dilemma_colocation(std::uint64_t seed) {
  std::vector<StagedWorkload> stages;
  stages.push_back({0.0, dilemma_lc(seed * 7 + 1)});
  stages.push_back({10.0, dilemma_be(seed * 7 + 2)});
  return stages;
}

void run_staged(TieredSystem& sys, std::vector<StagedWorkload> stages,
                double end_s,
                const std::function<void(TieredSystem&)>& on_epoch) {
  std::size_t next = 0;
  while (sys.now_seconds() < end_s) {
    while (next < stages.size() &&
           stages[next].start_s <= sys.now_seconds() + 1e-9) {
      sys.add_workload(std::move(stages[next].workload));
      ++next;
    }
    sys.run_epochs(1);
    if (on_epoch) on_epoch(sys);
  }
}

}  // namespace vulcan::runtime

#include "runtime/experiment.hpp"

#include <array>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/manager.hpp"
#include "mig/mechanism.hpp"
#include "obs/scope.hpp"
#include "policy/cascade.hpp"
#include "policy/memtis.hpp"
#include "policy/mtm.hpp"
#include "policy/nomad.hpp"
#include "policy/tpp.hpp"
#include "wl/apps.hpp"

namespace vulcan::runtime {

std::unique_ptr<policy::SystemPolicy> make_policy(std::string_view name,
                                                  unsigned online_cpus) {
  if (name == "tpp") {
    policy::TppPolicy::Params p;
    p.online_cpus = online_cpus;
    return std::make_unique<policy::TppPolicy>(p);
  }
  if (name == "memtis") {
    policy::MemtisPolicy::Params p;
    p.online_cpus = online_cpus;
    return std::make_unique<policy::MemtisPolicy>(p);
  }
  if (name == "nomad") {
    policy::NomadPolicy::Params p;
    p.online_cpus = online_cpus;
    return std::make_unique<policy::NomadPolicy>(p);
  }
  if (name == "mtm") {
    policy::MtmPolicy::Params p;
    p.online_cpus = online_cpus;
    return std::make_unique<policy::MtmPolicy>(p);
  }
  if (name == "cascade") {
    policy::CascadePolicy::Params p;
    p.online_cpus = online_cpus;
    return std::make_unique<policy::CascadePolicy>(p);
  }
  if (name == "vulcan") {
    core::VulcanManager::Params p;
    p.online_cpus = online_cpus;
    return std::make_unique<core::VulcanManager>(p);
  }
  throw std::invalid_argument("unknown policy: " + std::string(name));
}

std::span<const std::string> all_policy_names() {
  static const std::array<std::string, 6> kNames = {
      "vulcan", "tpp", "memtis", "nomad", "mtm", "cascade"};
  return kNames;
}

std::vector<StagedWorkload> paper_colocation(std::uint64_t seed) {
  std::vector<StagedWorkload> stages;
  stages.push_back({0.0, wl::make_memcached(seed * 1000 + 101)});
  stages.push_back({50.0, wl::make_pagerank(seed * 1000 + 202)});
  stages.push_back({110.0, wl::make_liblinear(seed * 1000 + 303)});
  return stages;
}

namespace {

std::unique_ptr<wl::Workload> dilemma_lc(std::uint64_t seed) {
  wl::WorkloadSpec s;
  s.name = "lc-service";
  s.service_class = wl::ServiceClass::kLatencyCritical;
  s.rss_pages = 8192;
  s.wss_pages = 8192;
  s.threads = 8;
  s.accesses_per_sec_per_thread = 2e5;
  s.latency_exposure = 1.0;
  s.shared_access_fraction = 1.0;
  return std::make_unique<wl::Workload>(
      s, s.rss_pages,
      std::make_unique<wl::HotsetPattern>(s.rss_pages, 0.10, 0.90, 0.10),
      std::make_unique<wl::UniformPattern>(s.rss_pages, 0.10), seed);
}

std::unique_ptr<wl::Workload> dilemma_be(std::uint64_t seed) {
  wl::WorkloadSpec s;
  s.name = "be-scanner";
  s.rss_pages = 12'288;
  s.wss_pages = 12'288;
  s.threads = 8;
  s.accesses_per_sec_per_thread = 6e6;
  s.latency_exposure = 0.3;
  s.shared_access_fraction = 1.0;
  return std::make_unique<wl::Workload>(
      s, s.rss_pages,
      std::make_unique<wl::SequentialPattern>(s.rss_pages, 0.05),
      std::make_unique<wl::UniformPattern>(s.rss_pages, 0.05), seed);
}

}  // namespace

std::vector<StagedWorkload> dilemma_colocation(std::uint64_t seed) {
  std::vector<StagedWorkload> stages;
  stages.push_back({0.0, dilemma_lc(seed * 7 + 1)});
  stages.push_back({10.0, dilemma_be(seed * 7 + 2)});
  return stages;
}

void run_staged(TieredSystem& sys, std::vector<StagedWorkload> stages,
                double end_s,
                const std::function<void(TieredSystem&)>& on_epoch) {
  // (workload index, departure time) of every admitted finite-lifetime
  // stage, in admission order.
  std::vector<std::pair<unsigned, double>> lifetimes;
  std::size_t pending = stages.size();
  while (sys.now_seconds() < end_s) {
    // Departures before arrivals: a slot leaving at t frees its frames for
    // anything arriving at the same boundary.
    for (const auto& [index, depart_s] : lifetimes) {
      if (depart_s <= sys.now_seconds() + 1e-9 &&
          !sys.workload_departed(index)) {
        sys.remove_workload(index);
      }
    }
    // Stages need not be sorted by start time (the fleet generator emits
    // them in app-id order so per-app draws stay resize-stable), so scan
    // for every due, not-yet-admitted stage; a moved-out workload pointer
    // marks admission. Ties admit in vector order — deterministic.
    for (std::size_t i = 0; pending > 0 && i < stages.size(); ++i) {
      if (!stages[i].workload) continue;
      if (stages[i].start_s > sys.now_seconds() + 1e-9) continue;
      const unsigned index = sys.add_workload(std::move(stages[i].workload));
      if (stages[i].end_s < end_s) {
        lifetimes.emplace_back(index, stages[i].end_s);
      }
      --pending;
    }
    sys.run_epochs(1);
    if (on_epoch) on_epoch(sys);
  }
}

// --------------------------------------------------------------- batteries

namespace {

std::uint64_t phase_cycles(const obs::Registry& reg, const char* name) {
  return reg.counter_value(std::string("mig.mechanism.") + name + "_cycles");
}

std::uint64_t mechanism_total(const obs::Registry& reg) {
  std::uint64_t total = 0;
  for (const char* name : {"prep", "unmap", "shootdown", "copy", "remap"}) {
    total += phase_cycles(reg, name);
  }
  return total;
}

}  // namespace

MigrationBreakdownRow migration_breakdown_row(
    unsigned cpus, const sim::CostModelParams& params) {
  obs::Registry reg;
  sim::Cycles clock = 0;
  const sim::CostModel cost(params);
  mig::MigrationMechanism mech(cost, {.online_cpus = cpus});
  mech.set_obs(obs::Scope(&reg, nullptr, &clock, "mig.mechanism"));
  // The migrating page may be cached by every other core (vanilla
  // process-wide tables give no tighter bound).
  (void)mech.single_page(cpus - 1, cpus - 1);
  MigrationBreakdownRow row;
  row.cpus = cpus;
  row.prep = phase_cycles(reg, "prep");
  row.unmap = phase_cycles(reg, "unmap");
  row.shootdown = phase_cycles(reg, "shootdown");
  row.copy = phase_cycles(reg, "copy");
  row.remap = phase_cycles(reg, "remap");
  return row;
}

std::vector<MigrationBreakdownRow> migration_breakdown_battery(
    std::span<const unsigned> cpus_list, unsigned jobs,
    exec::BatchStats* stats) {
  exec::BatchRunner runner(jobs);
  std::vector<std::function<MigrationBreakdownRow()>> batch;
  batch.reserve(cpus_list.size());
  for (const unsigned cpus : cpus_list) {
    batch.push_back([cpus] { return migration_breakdown_row(cpus); });
  }
  auto rows = exec::values_or_throw(runner.run(std::move(batch)),
                                    "fig2 migration-breakdown battery");
  if (stats) *stats = runner.stats();
  return rows;
}

MechanismSpeedupRow mechanism_speedup_row(std::uint64_t pages,
                                          const sim::CostModelParams& params) {
  // The microbench setting: 32 CPUs online, the migrating process runs 8
  // threads, and per-thread page tables prove ~1 sharer for most pages.
  constexpr unsigned kProcessRemote = 7;
  constexpr unsigned kSharerRemote = 1;
  obs::Registry reg_base, reg_prep, reg_both;
  sim::Cycles clock = 0;
  const sim::CostModel cost(params);
  mig::MigrationMechanism baseline(cost, {.online_cpus = 32});
  mig::MigrationMechanism prep_opt(cost,
                                   {.optimized_prep = true, .online_cpus = 32});
  mig::MigrationMechanism both(
      cost,
      {.optimized_prep = true, .targeted_shootdown = true, .online_cpus = 32});
  baseline.set_obs(obs::Scope(&reg_base, nullptr, &clock, "mig.mechanism"));
  prep_opt.set_obs(obs::Scope(&reg_prep, nullptr, &clock, "mig.mechanism"));
  both.set_obs(obs::Scope(&reg_both, nullptr, &clock, "mig.mechanism"));

  (void)baseline.batch(pages, kProcessRemote, kSharerRemote);
  (void)prep_opt.batch(pages, kProcessRemote, kSharerRemote);
  (void)both.batch(pages, kProcessRemote, kSharerRemote);

  MechanismSpeedupRow row;
  row.pages = pages;
  row.baseline_cycles = mechanism_total(reg_base);
  row.prep_opt_cycles = mechanism_total(reg_prep);
  row.both_cycles = mechanism_total(reg_both);
  return row;
}

std::vector<MechanismSpeedupRow> mechanism_speedup_battery(
    std::span<const std::uint64_t> pages_list, unsigned jobs,
    exec::BatchStats* stats) {
  exec::BatchRunner runner(jobs);
  std::vector<std::function<MechanismSpeedupRow()>> batch;
  batch.reserve(pages_list.size());
  for (const std::uint64_t pages : pages_list) {
    batch.push_back([pages] { return mechanism_speedup_row(pages); });
  }
  auto rows = exec::values_or_throw(runner.run(std::move(batch)),
                                    "fig7 mechanism-speedup battery");
  if (stats) *stats = runner.stats();
  return rows;
}

std::vector<PolicyRunSummary> run_policy_battery(
    const ScenarioSpec& spec, std::span<const std::string> policies,
    unsigned jobs, exec::BatchStats* stats) {
  if (!spec.stage) {
    throw std::invalid_argument("policy battery needs a stage hook");
  }
  exec::BatchRunner runner(jobs);
  std::vector<std::function<PolicyRunSummary()>> batch;
  batch.reserve(policies.size());
  for (const std::string& policy : policies) {
    // `spec` outlives the (synchronous) batch; each job builds and owns a
    // whole system, so concurrent policy runs never share state.
    batch.push_back([&spec, policy] {
      const auto run_once =
          [&spec, &policy](bool with_admission) {
            SystemBuilder b;
            if (spec.configure) spec.configure(b);
            if (spec.capture_provenance) b.provenance(true);
            if (with_admission) {
              mig::AdmissionSpec adm = *spec.admission_compare;
              adm.enabled = true;  // compare mode means "on", always
              b.admission(adm);
            }
            b.seed(spec.seed).policy(std::string_view(policy));
            BuildResult built = b.build();
            if (!built) {
              throw std::runtime_error(policy + ": " + built.error());
            }
            std::unique_ptr<TieredSystem> sys = std::move(built.value());
            run_staged(*sys, spec.stage(), spec.seconds);
            return sys;
          };
      const auto migration_cost = [](TieredSystem& s, std::uint64_t& pages,
                                     std::uint64_t& ipis) {
        pages = ipis = 0;
        for (unsigned w = 0; w < s.workload_count(); ++w) {
          const mig::MigrationStats& t = s.migrator(w).totals();
          pages += t.migrated;
          ipis += t.shootdown_ipis;
        }
      };

      // The admission-off run first: its artefacts are the summary's
      // regular fields and stay byte-identical whether or not the compare
      // rerun happens afterwards.
      std::unique_ptr<TieredSystem> sys_ptr = run_once(false);
      TieredSystem& sys = *sys_ptr;

      PolicyRunSummary summary;
      summary.policy = policy;
      summary.jain = sys.app_stats().jain_cumulative();
      summary.cfi = sys.fairness_cfi();
      const MetricsRecorder& m = sys.metrics();
      const std::size_t from = m.epochs().size() / 2;
      for (unsigned w = 0; w < sys.workload_count(); ++w) {
        const double perf = m.mean_performance(w, from);
        summary.apps.emplace_back(sys.workload(w).spec().name,
                                  perf > 0 ? 1.0 / perf : 1.0);
      }
      summary.snapshot = obs::snapshot_registry(sys.obs_registry());
      if (spec.capture_timeseries) {
        std::ostringstream rows;
        sys.obs_timeseries().write_jsonl(rows);
        summary.timeseries = rows.str();
      }
      if (spec.capture_provenance) {
        sys.provenance().finalize();
        std::ostringstream d, t;
        sys.provenance().write_decisions_jsonl(d);
        sys.provenance().write_transitions_jsonl(t);
        summary.decisions = d.str();
        summary.transitions = t.str();
      }
      if (spec.admission_compare) {
        AdmissionCompare cmp;
        migration_cost(sys, cmp.base_pages_migrated,
                       cmp.base_shootdown_ipis);
        const std::unique_ptr<TieredSystem> on = run_once(true);
        cmp.jain = on->app_stats().jain_cumulative();
        cmp.cfi = on->fairness_cfi();
        const MetricsRecorder& om = on->metrics();
        const std::size_t ofrom = om.epochs().size() / 2;
        for (unsigned w = 0; w < on->workload_count(); ++w) {
          const double perf = om.mean_performance(w, ofrom);
          cmp.apps.emplace_back(on->workload(w).spec().name,
                                perf > 0 ? 1.0 / perf : 1.0);
        }
        migration_cost(*on, cmp.pages_migrated, cmp.shootdown_ipis);
        const mig::AdmissionController* ctl = on->admission_controller();
        cmp.admitted = ctl ? ctl->admitted() : 0;
        cmp.vetoed = ctl ? ctl->vetoed() : 0;
        summary.admission = std::move(cmp);
      }
      return summary;
    });
  }
  auto summaries = exec::values_or_throw(
      runner.run(std::move(batch)), "policy battery \"" + spec.name + "\"");
  if (stats) *stats = runner.stats();
  return summaries;
}

}  // namespace vulcan::runtime

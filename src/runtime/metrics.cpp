#include "runtime/metrics.hpp"

namespace vulcan::runtime {

const std::vector<std::string>& MetricsRecorder::columns() {
  static const std::vector<std::string> kColumns{
      "time_s",        "workload",  "fthr",          "performance",
      "avg_latency_ns", "fast_pages", "slow_pages",   "quota",
      "accesses",      "stall_cycles", "daemon_cycles", "migrated",
      "failed",        "shadow_remaps"};
  return kColumns;
}

void MetricsRecorder::write(obs::Exporter& exporter) const {
  exporter.begin(columns());
  for (const auto& epoch : epochs_) {
    for (std::size_t w = 0; w < epoch.workloads.size(); ++w) {
      const auto& m = epoch.workloads[w];
      const obs::Value row[] = {
          epoch.time_s,
          static_cast<std::uint64_t>(w),
          m.fthr,
          m.performance,
          m.avg_latency_ns,
          m.fast_pages,
          m.slow_pages,
          m.quota,
          m.accesses,
          static_cast<std::uint64_t>(m.stall_cycles),
          static_cast<std::uint64_t>(m.daemon_cycles),
          m.migrated,
          m.failed_migrations,
          m.shadow_remaps,
      };
      exporter.row(row);
    }
  }
  exporter.end();
}

void MetricsRecorder::write_csv(std::ostream& out) const {
  out << "time_s,workload,fthr,performance,avg_latency_ns,fast_pages,"
         "slow_pages,quota,accesses,stall_cycles,daemon_cycles,migrated,"
         "failed,shadow_remaps\n";
  for (const auto& epoch : epochs_) {
    for (std::size_t w = 0; w < epoch.workloads.size(); ++w) {
      const auto& m = epoch.workloads[w];
      out << epoch.time_s << ',' << w << ',' << m.fthr << ','
          << m.performance << ',' << m.avg_latency_ns << ',' << m.fast_pages
          << ',' << m.slow_pages << ',' << m.quota << ',' << m.accesses << ','
          << m.stall_cycles << ',' << m.daemon_cycles << ',' << m.migrated
          << ',' << m.failed_migrations << ',' << m.shadow_remaps << '\n';
    }
  }
}

}  // namespace vulcan::runtime

// runtime::fleet — the fleet-scale co-location battery.
//
// The paper evaluates a handful of co-located applications; this module
// scales the same harness to O(100) apps with arrival/departure churn, the
// regime where per-app *tail* fairness (who is the worst-off app right
// now?) diverges from the mean-fairness story single-scenario runs tell.
//
// Two pieces:
//
//  * make_fleet(spec) — a seeded, deterministic scenario generator that
//    composes LC/BE/antagonist archetypes (wl/fleet.hpp), diurnal load
//    curves, antagonist bursts and Poisson arrival/departure churn into a
//    StagedWorkload set. Every per-app draw comes from a stream keyed by
//    (seed, app_id), so changing the fleet size or removing one app never
//    perturbs another app's schedule or access stream.
//
//  * run_fleet_battery(spec, policies, jobs) — one fleet run per policy,
//    fanned out across an exec::BatchRunner exactly like
//    run_policy_battery, but reporting fairness *over time*: per window
//    (obs::TimeSeriesStore) the worst-app slowdown, the windowed Jain
//    floor and the live-app count, plus run-level tail aggregates. Byte-
//    identical results at any `jobs` count.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mig/admission.hpp"
#include "obs/timeseries.hpp"
#include "runtime/experiment.hpp"
#include "wl/fleet.hpp"

namespace vulcan::runtime {

/// Knobs of the seeded fleet generator. Defaults give a 64-app static
/// (no-churn) fleet: every app admitted at t=0, none depart.
struct FleetSpec {
  unsigned apps = 64;
  double seconds = 30.0;
  std::uint64_t seed = 42;
  /// Archetype mix: `lc_fraction` of the apps are latency-critical
  /// services, `be_fraction` best-effort batch jobs; the remainder are
  /// bursty bandwidth antagonists.
  double lc_fraction = 0.50;
  double be_fraction = 0.35;
  /// Mean churn events (arrivals + departures) per simulated minute.
  /// 0 disables churn entirely — the historical static-fleet behaviour.
  double churn_per_min = 0.0;
  /// Probability an app is admitted at t=0 when churning (drawn from the
  /// app's own stream; app 0 always is, anchoring the fleet). The rest
  /// arrive through a Poisson process whose rate follows churn_per_min.
  double initial_fraction = 0.5;
  /// Mean exponential lifetime of churned apps; 0 = seconds / 2.
  double mean_lifetime_s = 0.0;
  /// Scales every app's RSS (capacity-pressure sweeps).
  double footprint_scale = 1.0;
  /// Admission-control ablation (mirrors
  /// ScenarioSpec::admission_compare): when set, every policy's fleet run
  /// happens twice — admission-off first (the result's regular fields,
  /// byte-identical to a compare-free battery), then with this spec
  /// enabled, landing in FleetPolicyResult::admission.
  std::optional<mig::AdmissionSpec> admission_compare;
};

/// Deterministic fleet scenario: `spec.apps` staged workloads in app-id
/// order (NOT start order — run_staged admits due arrivals whatever the
/// order, and id order keeps the vector resize-stable). Each app's
/// archetype, arrival gap, lifetime and workload stream derive solely
/// from (spec.seed, app_id) via wl::fleet_app_seed.
std::vector<StagedWorkload> make_fleet(const FleetSpec& spec);

/// Tail-fairness window width used by the fleet battery (wider than the
/// 250 ms epoch so a window aggregates several epochs).
inline constexpr double kFleetWindowSeconds = 2.0;

/// One tail-fairness reporting window of one policy's fleet run.
struct FleetWindowRow {
  std::uint64_t window = 0;     ///< TimeSeriesStore window index
  double time_s = 0.0;          ///< window start in simulated seconds
  double worst_slowdown = 1.0;  ///< max worst-app slowdown in the window
  double jain_min = 1.0;        ///< windowed floor of per-epoch Jain
  double live_apps = 0.0;       ///< live workloads at the window's end
};

/// The with-admission half of a fleet admission ablation (see
/// FleetSpec::admission_compare): the same tail aggregates plus the
/// migration cost totals of both runs, so consumers print the cost delta
/// next to the fairness columns.
struct FleetAdmissionCompare {
  double jain_cumulative = 1.0;
  double worst_slowdown_overall = 1.0;
  double worst_slowdown_p99 = 1.0;
  double jain_floor = 1.0;
  /// Migration cost with admission on: pages migrated + remote cores
  /// IPI'd, summed over every workload slot.
  std::uint64_t pages_migrated = 0;
  std::uint64_t shootdown_ipis = 0;
  /// The same totals from the admission-off run.
  std::uint64_t base_pages_migrated = 0;
  std::uint64_t base_shootdown_ipis = 0;
  /// Controller verdict totals (adm.admitted / adm.vetoed).
  std::uint64_t admitted = 0;
  std::uint64_t vetoed = 0;
};

/// One policy's end-to-end fleet result.
struct FleetPolicyResult {
  std::string policy;
  double jain_cumulative = 1.0;       ///< app.fairness.jain_cumulative
  double worst_slowdown_overall = 1.0;  ///< max over windows
  double worst_slowdown_p99 = 1.0;      ///< p99 over per-window maxima
  double jain_floor = 1.0;              ///< min over windowed Jain floors
  std::vector<FleetWindowRow> windows;  ///< oldest first
  obs::MetricsSnapshot snapshot;        ///< the run's full registry
  /// The with-admission rerun when the spec set admission_compare.
  std::optional<FleetAdmissionCompare> admission;
};

/// The TimeSeriesStore configuration fleet runs install: windows of
/// kFleetWindowSeconds, retained for the whole run (so the tail table
/// covers every window, not just the most recent few).
obs::TimeSeriesConfig fleet_timeseries_config(double seconds);

/// Assemble the per-window tail-fairness rows from a finished run's
/// time-series store (the worst-slowdown / Jain / live-app gauges all
/// observe at the same epoch boundaries, so their windows align).
std::vector<FleetWindowRow> fleet_windows(const obs::TimeSeriesStore& store);

/// Summarise one finished fleet run: cumulative Jain, per-window rows,
/// the run-level tail aggregates and the full registry snapshot.
FleetPolicyResult summarize_fleet_run(TieredSystem& sys, std::string policy);

/// Run the fleet scenario once per policy (deterministic; byte-identical
/// for any `jobs`). A policy whose run throws — including an audit
/// failure — fails the whole battery with a std::runtime_error naming it.
std::vector<FleetPolicyResult> run_fleet_battery(
    const FleetSpec& spec, std::span<const std::string> policies,
    unsigned jobs = 1, exec::BatchStats* stats = nullptr);

}  // namespace vulcan::runtime

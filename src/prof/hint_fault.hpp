// NUMA-hinting-fault profiler (AutoTiering / TPP style): a rotating sample
// of PTEs is "poisoned" each epoch; the next access to a poisoned page traps
// into a minor fault, which both proves the access and charges the fault's
// latency to the application — the mechanism's documented drawback.
#pragma once

#include <vector>

#include "prof/profiler.hpp"

namespace vulcan::prof {

class HintFaultProfiler final : public Profiler {
 public:
  /// @param poison_fraction  share of resident pages poisoned per epoch
  HintFaultProfiler(HeatTracker& tracker, const sim::CostModel& cost,
                    double poison_fraction = 0.10)
      : Profiler(tracker), cost_(&cost), poison_fraction_(poison_fraction),
        poisoned_(tracker.pages(), false) {}

  sim::Cycles observe(const AccessSample& s, double weight,
                      sim::Rng& rng) override {
    (void)rng;
    if (s.page >= poisoned_.size() || !poisoned_[s.page]) return 0;
    poisoned_[s.page] = false;
    ++faults_;
    // One fault proves one access; weight carries the sampling scale-up.
    tracker().record(s.page, s.is_write, weight);
    return cost_->minor_fault();
  }

  sim::Cycles on_epoch(vm::AddressSpace& as) override {
    // Re-poison a fresh rotating window of resident pages.
    const std::uint64_t pages = poisoned_.size();
    const auto target = static_cast<std::uint64_t>(
        poison_fraction_ * static_cast<double>(pages));
    std::fill(poisoned_.begin(), poisoned_.end(), false);
    std::uint64_t armed = 0;
    // The window is a consecutive page run (modulo wrap), so one leaf
    // lookup serves each aligned 512-page stretch instead of a full radix
    // walk per candidate PTE.
    const vm::PageTable& pt = as.tables().process_table();
    const vm::LeafTable* leaf = nullptr;
    std::uint64_t leaf_chunk = ~std::uint64_t{0};
    for (std::uint64_t i = 0; i < target && pages > 0; ++i) {
      const std::uint64_t page = (cursor_ + i) % pages;
      const vm::Vpn vpn = as.vpn_at(page);
      const std::uint64_t chunk = vpn / sim::kPagesPerHuge;
      if (chunk != leaf_chunk) {
        leaf = pt.leaf_of(vpn);
        leaf_chunk = chunk;
      }
      if (leaf &&
          leaf->get(static_cast<unsigned>(vpn & (sim::kPagesPerHuge - 1)))
              .present()) {
        poisoned_[page] = true;
        ++armed;
      }
    }
    cursor_ = (cursor_ + target) % std::max<std::uint64_t>(1, pages);
    // Arming = one PTE write per page; faults were already charged inline.
    const sim::Cycles cost = armed * 40;
    faults_ = 0;
    return cost;
  }

  std::string_view name() const override { return "hint-fault"; }
  bool poisoned(std::uint64_t page) const {
    return page < poisoned_.size() && poisoned_[page];
  }

 private:
  const sim::CostModel* cost_;
  double poison_fraction_;
  std::vector<bool> poisoned_;
  std::uint64_t cursor_ = 0;
  std::uint64_t faults_ = 0;
};

}  // namespace vulcan::prof

// Page-table-scanning profiler: periodically walks the PTE accessed bits
// (Nimble / MULTI-CLOCK style). Coarse — one bit per scan interval — and
// its cost scales with RSS, the scalability concern §2.1 notes.
#pragma once

#include "prof/profiler.hpp"

namespace vulcan::prof {

class PtScanProfiler final : public Profiler {
 public:
  /// @param scan_weight        heat contribution of one observed A-bit
  /// @param cycles_per_pte     scan cost per examined PTE (~cache miss)
  explicit PtScanProfiler(HeatTracker& tracker, double scan_weight = 1.0,
                          sim::Cycles cycles_per_pte = 30)
      : Profiler(tracker), scan_weight_(scan_weight),
        cycles_per_pte_(cycles_per_pte) {}

  sim::Cycles observe(const AccessSample&, double, sim::Rng&) override {
    return 0;  // passive: hardware sets the accessed bits for free
  }

  sim::Cycles on_epoch(vm::AddressSpace& as) override {
    // The A-bit cannot distinguish read from write, but the D-bit can
    // flag writes — use both, then clear for the next interval.
    const vm::Vpn base = as.base_vpn();
    std::uint64_t scanned = 0;
    as.tables().process_table().visit([&](vm::Vpn vpn, vm::Pte pte) {
      ++scanned;
      if (!pte.accessed()) return;
      const std::uint64_t page = vpn - base;
      if (page >= tracker().pages()) return;
      tracker().record(page, pte.dirty(), scan_weight_);
      as.clear_accessed(vpn);
      as.clear_dirty(vpn);
    });
    return scanned * cycles_per_pte_;
  }

  std::string_view name() const override { return "pt-scan"; }

 private:
  double scan_weight_;
  sim::Cycles cycles_per_pte_;
};

}  // namespace vulcan::prof

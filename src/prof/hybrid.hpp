// Hybrid profiler (Vulcan's default, inspired by FlexMem §3.2): PEBS-style
// sampling for cheap frequency estimation plus hinting faults for coverage
// of the pages sampling under-reports. Both feed the same HeatTracker.
#pragma once

#include "prof/hint_fault.hpp"
#include "prof/pebs.hpp"
#include "prof/profiler.hpp"

namespace vulcan::prof {

class HybridProfiler final : public Profiler {
 public:
  HybridProfiler(HeatTracker& tracker, const sim::CostModel& cost,
                 std::uint64_t pebs_period = 64,
                 double poison_fraction = 0.02)
      : Profiler(tracker),
        pebs_(tracker, pebs_period),
        hint_(tracker, cost, poison_fraction) {}

  sim::Cycles observe(const AccessSample& s, double weight,
                      sim::Rng& rng) override {
    // The two mechanisms are independent; costs add.
    return pebs_.observe(s, weight, rng) + hint_.observe(s, weight, rng);
  }

  sim::Cycles on_epoch(vm::AddressSpace& as) override {
    return pebs_.on_epoch(as) + hint_.on_epoch(as);
  }

  std::string_view name() const override { return "hybrid"; }

 private:
  PebsProfiler pebs_;
  HintFaultProfiler hint_;
};

}  // namespace vulcan::prof

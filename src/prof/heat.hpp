// Per-page heat tracking: decayed access frequency plus read/write intensity,
// with Memtis-style quota-driven hot/cold classification.
//
// Pages are addressed by their 0-based offset within one workload's RSS.
// Counters decay geometrically each epoch so heat blends frequency with
// recency (the combination §2.1 describes for modern tiering systems).
#pragma once

#include <cstdint>
#include <vector>

namespace vulcan::prof {

class HeatTracker {
 public:
  /// @param pages  RSS size of the tracked workload
  /// @param decay  per-epoch multiplier on all counters (0.5 = halve)
  explicit HeatTracker(std::uint64_t pages, double decay = 0.5);

  /// Record `weight` accesses to `page` (weight scales a sample up to the
  /// real access count it represents).
  void record(std::uint64_t page, bool is_write, double weight = 1.0);

  /// End-of-epoch decay of every counter.
  void decay_epoch();

  std::uint64_t pages() const { return heat_.size(); }
  double heat(std::uint64_t page) const { return heat_[page]; }
  double read_rate(std::uint64_t page) const { return reads_[page]; }
  double write_rate(std::uint64_t page) const { return writes_[page]; }

  /// A page is write-intensive when writes are a substantial share of its
  /// traffic (threshold per MTM-style classification).
  bool write_intensive(std::uint64_t page,
                       double write_share_threshold = 0.25) const;

  /// Smallest heat value `h` such that at most `quota` pages have
  /// heat >= h (the Memtis capacity-driven hot threshold). Returns +inf
  /// when quota == 0 and 0 when quota >= pages-with-heat.
  double hot_threshold_for(std::uint64_t quota) const;

  /// Pages with heat >= threshold.
  std::uint64_t count_at_least(double threshold) const;

  /// The `count` hottest pages, hottest first (ties by page id).
  std::vector<std::uint64_t> hottest(std::uint64_t count) const;

  /// Total recorded (decayed) heat mass.
  double total_heat() const;

  /// Working-set knee: the smallest number of pages whose (hottest-first)
  /// heat covers `fraction` of the total heat mass. This is the memory a
  /// workload *usefully* demands — a skewed service needs only its hot set,
  /// a uniform scanner needs nearly everything.
  std::uint64_t coverage_pages(double fraction) const;

 private:
  /// Fill `sort_scratch_` with the IEEE bit patterns of every positive
  /// heat and return it. Positive floats order identically to their raw
  /// bits, so the quota/coverage paths sort plain integers in a reused
  /// buffer instead of allocating a float vector per epoch per policy.
  std::vector<std::uint32_t>& collect_nonzero_bits() const;

  double decay_;
  std::vector<float> heat_;
  std::vector<float> reads_;
  std::vector<float> writes_;
  mutable std::vector<std::uint32_t> sort_scratch_;
};

}  // namespace vulcan::prof

// PEBS-style sampling profiler: records every `period`-th access, scaled
// back up by the period. Cheap and passive, but suffers false negatives on
// large, lightly-touched regions (the Telescope critique in §2.1): pages
// accessed less often than the sampling period go unseen.
#pragma once

#include "prof/profiler.hpp"

namespace vulcan::prof {

class PebsProfiler final : public Profiler {
 public:
  /// @param period  sample 1 in `period` accesses (PEBS reset value)
  PebsProfiler(HeatTracker& tracker, std::uint64_t period = 64,
               sim::Cycles cycles_per_sample = 400)
      : Profiler(tracker), period_(period),
        inv_period_(1.0 / static_cast<double>(period)),
        cycles_per_sample_(cycles_per_sample) {}

  sim::Cycles observe(const AccessSample& s, double weight,
                      sim::Rng& rng) override {
    // Sampling is probabilistic (1/period per access) rather than a strict
    // counter: a deterministic counter phase-locks against strided access
    // patterns (stride divisible by the period) and silently blinds the
    // profiler to entire page ranges.
    if (!rng.chance(inv_period_)) return 0;
    tracker().record(s.page, s.is_write,
                     weight * static_cast<double>(period_));
    ++samples_;
    // PEBS buffers drain off the critical path; the app-visible cost of an
    // armed counter is effectively zero in this model.
    return 0;
  }

  sim::Cycles on_epoch(vm::AddressSpace&) override {
    // Daemon drains and processes the sample buffer.
    const sim::Cycles cost = samples_ * cycles_per_sample_;
    samples_ = 0;
    return cost;
  }

  std::string_view name() const override { return "pebs"; }
  std::uint64_t period() const { return period_; }

 private:
  std::uint64_t period_;
  double inv_period_;  ///< hoisted off the per-access path
  sim::Cycles cycles_per_sample_;
  std::uint64_t samples_ = 0;
};

}  // namespace vulcan::prof

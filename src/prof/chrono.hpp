// Chrono-style idle-time hotness measurement (Qi et al., EuroSys'25;
// cited in §2.1 as the timer-based variant of hinting-fault profiling).
//
// A plain accessed-bit scan answers only "touched since last interval?" —
// one bit per interval regardless of how often the page was hit. Chrono's
// insight: track each page's *idle time* (intervals since it was last seen
// accessed) and estimate its access rate as the reciprocal. A page seen
// every interval earns full weight; a page seen after k idle intervals
// earns weight/k — far better frequency discrimination at the same scan
// cost.
#pragma once

#include <vector>

#include "prof/profiler.hpp"

namespace vulcan::prof {

class ChronoProfiler final : public Profiler {
 public:
  explicit ChronoProfiler(HeatTracker& tracker, double scan_weight = 1.0,
                          sim::Cycles cycles_per_pte = 32)
      : Profiler(tracker), scan_weight_(scan_weight),
        cycles_per_pte_(cycles_per_pte),
        last_seen_(tracker.pages(), 0) {}

  sim::Cycles observe(const AccessSample&, double, sim::Rng&) override {
    return 0;  // passive
  }

  sim::Cycles on_epoch(vm::AddressSpace& as) override {
    ++epoch_;
    const vm::Vpn base = as.base_vpn();
    std::uint64_t scanned = 0;
    as.tables().process_table().visit([&](vm::Vpn vpn, vm::Pte pte) {
      ++scanned;
      if (!pte.accessed()) return;
      const std::uint64_t page = vpn - base;
      if (page >= last_seen_.size()) return;
      const std::uint64_t idle =
          std::max<std::uint64_t>(1, epoch_ - last_seen_[page]);
      last_seen_[page] = epoch_;
      // Rate estimate: one observed touch amortised over the idle window.
      tracker().record(page, pte.dirty(),
                       scan_weight_ / static_cast<double>(idle));
      as.clear_accessed(vpn);
      as.clear_dirty(vpn);
    });
    return scanned * cycles_per_pte_;
  }

  std::string_view name() const override { return "chrono"; }

  /// Idle intervals of `page` as of the last scan (0 = never seen).
  std::uint64_t idle_epochs(std::uint64_t page) const {
    if (page >= last_seen_.size() || last_seen_[page] == 0) return 0;
    return epoch_ - last_seen_[page];
  }

 private:
  double scan_weight_;
  sim::Cycles cycles_per_pte_;
  std::vector<std::uint64_t> last_seen_;
  std::uint64_t epoch_ = 0;
};

}  // namespace vulcan::prof

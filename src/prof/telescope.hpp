// Telescope-style hierarchical page-table profiling (Nair et al.,
// ATC'24; cited in §2.1 as the scalable variant of PT scanning for
// terabyte-scale memory).
//
// Instead of touching every PTE each interval, the scanner reads the
// *upper-level* accessed summaries first (the MMU sets the PMD-entry A-bit
// whenever it walks through a last-level table) and descends only into the
// 2 MB regions that were touched at all. Idle regions cost one check per
// interval instead of 512 — on cold-heavy footprints the scan cost drops by
// orders of magnitude while hot pages are observed exactly as in a full
// scan.
#pragma once

#include "prof/profiler.hpp"

namespace vulcan::prof {

class TelescopeProfiler final : public Profiler {
 public:
  /// @param cycles_per_region   reading one upper-level summary bit
  /// @param cycles_per_pte      scanning one PTE inside a touched region
  explicit TelescopeProfiler(HeatTracker& tracker, double scan_weight = 1.0,
                             sim::Cycles cycles_per_region = 40,
                             sim::Cycles cycles_per_pte = 30)
      : Profiler(tracker), scan_weight_(scan_weight),
        cycles_per_region_(cycles_per_region),
        cycles_per_pte_(cycles_per_pte) {}

  sim::Cycles observe(const AccessSample&, double, sim::Rng&) override {
    return 0;  // passive: the MMU maintains the A-bit hierarchy
  }

  sim::Cycles on_epoch(vm::AddressSpace& as) override {
    const vm::Vpn base = as.base_vpn();
    sim::Cycles cost = 0;
    last_regions_total_ = last_regions_descended_ = 0;
    as.tables().process_table().visit_leaves(
        [&](vm::Vpn leaf_base, vm::LeafTable& leaf) {
          ++last_regions_total_;
          cost += cycles_per_region_;
          if (!leaf.region_accessed()) return;  // idle region: skip
          ++last_regions_descended_;
          leaf.clear_region_accessed();
          for (unsigned i = 0; i < vm::LeafTable::kEntries; ++i) {
            cost += cycles_per_pte_;
            const vm::Pte pte = leaf.get(i);
            if (!pte.present() || !pte.accessed()) continue;
            const vm::Vpn vpn = leaf_base | i;
            const std::uint64_t page = vpn - base;
            if (page >= tracker().pages()) continue;
            tracker().record(page, pte.dirty(), scan_weight_);
            as.clear_accessed(vpn);
            as.clear_dirty(vpn);
          }
        });
    return cost;
  }

  std::string_view name() const override { return "telescope"; }

  /// Scan statistics from the last epoch (for tests and the tour example).
  std::uint64_t last_regions_total() const { return last_regions_total_; }
  std::uint64_t last_regions_descended() const {
    return last_regions_descended_;
  }

 private:
  double scan_weight_;
  sim::Cycles cycles_per_region_;
  sim::Cycles cycles_per_pte_;
  std::uint64_t last_regions_total_ = 0;
  std::uint64_t last_regions_descended_ = 0;
};

}  // namespace vulcan::prof

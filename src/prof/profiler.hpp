// Profiler interface: the pluggable page-access tracking mechanisms of
// §2.1/§3.2. The migration daemon selects one per workload; Vulcan's default
// is the FlexMem-inspired hybrid (performance counters + hinting faults).
//
// Profilers see the simulated access stream through observe() (one call per
// simulated access, carrying the real-access weight that sample represents)
// and do their periodic work in on_epoch(). Both report the cycles their
// mechanism costs so the runtime can charge profiling overhead honestly.
#pragma once

#include <cstdint>
#include <string_view>

#include "prof/heat.hpp"
#include "sim/clock.hpp"
#include "sim/cost_model.hpp"
#include "sim/rng.hpp"
#include "vm/address_space.hpp"

namespace vulcan::prof {

/// One simulated access, page-offset-addressed within a workload's RSS.
struct AccessSample {
  std::uint64_t page = 0;
  unsigned thread = 0;
  bool is_write = false;
};

class Profiler {
 public:
  virtual ~Profiler() = default;

  /// Observe one simulated access representing `weight` real accesses.
  /// Returns cycles of overhead imposed *on the application* by observing
  /// this access (0 for passive mechanisms, fault cost for hint faults).
  virtual sim::Cycles observe(const AccessSample& sample, double weight,
                              sim::Rng& rng) = 0;

  /// Periodic work (scans, re-poisoning). `as` may be consulted/updated for
  /// PTE-level mechanisms; it is the workload's address space. Returns the
  /// cycles of daemon-side overhead for the epoch.
  virtual sim::Cycles on_epoch(vm::AddressSpace& as) = 0;

  virtual std::string_view name() const = 0;

  HeatTracker& tracker() { return *tracker_; }
  const HeatTracker& tracker() const { return *tracker_; }

 protected:
  explicit Profiler(HeatTracker& tracker) : tracker_(&tracker) {}

 private:
  HeatTracker* tracker_;
};

}  // namespace vulcan::prof

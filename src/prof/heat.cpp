#include "prof/heat.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <numeric>

namespace vulcan::prof {

HeatTracker::HeatTracker(std::uint64_t pages, double decay)
    : decay_(decay), heat_(pages, 0.f), reads_(pages, 0.f),
      writes_(pages, 0.f) {
  assert(decay >= 0.0 && decay <= 1.0);
}

void HeatTracker::record(std::uint64_t page, bool is_write, double weight) {
  assert(page < heat_.size());
  const auto w = static_cast<float>(weight);
  heat_[page] += w;
  (is_write ? writes_ : reads_)[page] += w;
}

void HeatTracker::decay_epoch() {
  const auto d = static_cast<float>(decay_);
  for (auto& h : heat_) h *= d;
  for (auto& r : reads_) r *= d;
  for (auto& w : writes_) w *= d;
}

bool HeatTracker::write_intensive(std::uint64_t page,
                                  double write_share_threshold) const {
  const double total = reads_[page] + writes_[page];
  if (total <= 0.0) return false;
  return writes_[page] / total > write_share_threshold;
}

double HeatTracker::hot_threshold_for(std::uint64_t quota) const {
  if (quota == 0) return std::numeric_limits<double>::infinity();
  // Collect nonzero heats; if fewer than quota, everything warm is hot.
  std::vector<std::uint32_t>& nz = collect_nonzero_bits();
  if (nz.size() <= quota) return nz.empty() ? 0.0 : 1e-30;
  // The quota-th largest heat value.
  auto nth = nz.begin() + static_cast<std::ptrdiff_t>(quota - 1);
  std::nth_element(nz.begin(), nth, nz.end(),
                   std::greater<std::uint32_t>());
  return static_cast<double>(std::bit_cast<float>(*nth));
}

std::uint64_t HeatTracker::count_at_least(double threshold) const {
  std::uint64_t n = 0;
  for (const float h : heat_) n += (h >= threshold && h > 0.f);
  return n;
}

std::vector<std::uint64_t> HeatTracker::hottest(std::uint64_t count) const {
  std::vector<std::uint64_t> idx(heat_.size());
  std::iota(idx.begin(), idx.end(), 0);
  const std::uint64_t k = std::min<std::uint64_t>(count, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::uint64_t a, std::uint64_t b) {
                      if (heat_[a] != heat_[b]) return heat_[a] > heat_[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

double HeatTracker::total_heat() const {
  return std::accumulate(heat_.begin(), heat_.end(), 0.0);
}

std::uint64_t HeatTracker::coverage_pages(double fraction) const {
  const double total = total_heat();
  if (total <= 0.0) return 0;
  std::vector<std::uint32_t>& nz = collect_nonzero_bits();
  // Tiny relative tolerance so float accumulation at exact-fraction
  // boundaries doesn't pull in one extra page.
  const double target =
      std::clamp(fraction, 0.0, 1.0) * total * (1.0 - 1e-6);
  // Progressive selection instead of a full sort: select-and-sort the
  // hottest window, accumulate, and widen only while the target is
  // uncovered. The accumulation visits values in exactly the descending
  // order a full sort would produce (ties are equal floats, so their
  // relative order cannot change the sum), so the result is identical —
  // but a skewed workload covers its target within the first window and
  // skips sorting the long cold tail.
  double covered = 0.0;
  std::uint64_t pages = 0;
  std::size_t begin = 0;   // [0, begin) already accumulated
  std::size_t window = 1024;
  while (begin < nz.size() && covered < target) {
    const std::size_t end = std::min(nz.size(), begin + window);
    if (end < nz.size()) {
      std::nth_element(nz.begin() + static_cast<std::ptrdiff_t>(begin),
                       nz.begin() + static_cast<std::ptrdiff_t>(end - 1),
                       nz.end(), std::greater<std::uint32_t>());
    }
    std::sort(nz.begin() + static_cast<std::ptrdiff_t>(begin),
              nz.begin() + static_cast<std::ptrdiff_t>(end),
              std::greater<std::uint32_t>());
    for (std::size_t i = begin; i < end; ++i) {
      if (covered >= target) return pages;
      covered += static_cast<double>(std::bit_cast<float>(nz[i]));
      ++pages;
    }
    begin = end;
    window *= 4;
  }
  return pages;
}

std::vector<std::uint32_t>& HeatTracker::collect_nonzero_bits() const {
  sort_scratch_.clear();
  sort_scratch_.reserve(heat_.size());
  for (const float h : heat_) {
    if (h > 0.f) sort_scratch_.push_back(std::bit_cast<std::uint32_t>(h));
  }
  return sort_scratch_;
}

}  // namespace vulcan::prof

#include "prof/heat.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace vulcan::prof {

HeatTracker::HeatTracker(std::uint64_t pages, double decay)
    : decay_(decay), heat_(pages, 0.f), reads_(pages, 0.f),
      writes_(pages, 0.f) {
  assert(decay >= 0.0 && decay <= 1.0);
}

void HeatTracker::record(std::uint64_t page, bool is_write, double weight) {
  assert(page < heat_.size());
  const auto w = static_cast<float>(weight);
  heat_[page] += w;
  (is_write ? writes_ : reads_)[page] += w;
}

void HeatTracker::decay_epoch() {
  const auto d = static_cast<float>(decay_);
  for (auto& h : heat_) h *= d;
  for (auto& r : reads_) r *= d;
  for (auto& w : writes_) w *= d;
}

bool HeatTracker::write_intensive(std::uint64_t page,
                                  double write_share_threshold) const {
  const double total = reads_[page] + writes_[page];
  if (total <= 0.0) return false;
  return writes_[page] / total > write_share_threshold;
}

double HeatTracker::hot_threshold_for(std::uint64_t quota) const {
  if (quota == 0) return std::numeric_limits<double>::infinity();
  // Collect nonzero heats; if fewer than quota, everything warm is hot.
  std::vector<float> nz;
  nz.reserve(heat_.size());
  for (const float h : heat_) {
    if (h > 0.f) nz.push_back(h);
  }
  if (nz.size() <= quota) return nz.empty() ? 0.0 : 1e-30;
  // The quota-th largest heat value.
  auto nth = nz.begin() + static_cast<std::ptrdiff_t>(quota - 1);
  std::nth_element(nz.begin(), nth, nz.end(), std::greater<float>());
  return static_cast<double>(*nth);
}

std::uint64_t HeatTracker::count_at_least(double threshold) const {
  std::uint64_t n = 0;
  for (const float h : heat_) n += (h >= threshold && h > 0.f);
  return n;
}

std::vector<std::uint64_t> HeatTracker::hottest(std::uint64_t count) const {
  std::vector<std::uint64_t> idx(heat_.size());
  std::iota(idx.begin(), idx.end(), 0);
  const std::uint64_t k = std::min<std::uint64_t>(count, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::uint64_t a, std::uint64_t b) {
                      if (heat_[a] != heat_[b]) return heat_[a] > heat_[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

double HeatTracker::total_heat() const {
  return std::accumulate(heat_.begin(), heat_.end(), 0.0);
}

std::uint64_t HeatTracker::coverage_pages(double fraction) const {
  const double total = total_heat();
  if (total <= 0.0) return 0;
  std::vector<float> nz;
  nz.reserve(heat_.size());
  for (const float h : heat_) {
    if (h > 0.f) nz.push_back(h);
  }
  std::sort(nz.begin(), nz.end(), std::greater<float>());
  // Tiny relative tolerance so float accumulation at exact-fraction
  // boundaries doesn't pull in one extra page.
  const double target =
      std::clamp(fraction, 0.0, 1.0) * total * (1.0 - 1e-6);
  double covered = 0.0;
  std::uint64_t pages = 0;
  for (const float h : nz) {
    if (covered >= target) break;
    covered += h;
    ++pages;
  }
  return pages;
}

}  // namespace vulcan::prof

// Black-box LC/BE classification (Vulcan §3.3, after Themis): workloads are
// classified from their observable resource-utilisation patterns, not from
// declared labels. Latency-critical services show bursty, time-varying
// request rates (diurnal load, user-driven); best-effort batch jobs drive
// the machine at a flat, saturated rate.
//
// The classifier keeps a sliding window of per-epoch access rates and
// labels a workload LC when its coefficient of variation exceeds a
// threshold, BE otherwise. Until the window fills it reports a
// conservative default (LC), so young workloads are protected.
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>

namespace vulcan::core {

class LcBeClassifier {
 public:
  struct Params {
    /// Epochs of history. Must span a meaningful slice of an LC service's
    /// demand cycle (10 s at 250 ms epochs) or diurnal-style oscillation
    /// is invisible inside the window.
    std::size_t window = 40;
    std::size_t min_samples = 8;    ///< below this: default to LC
    /// CV above this => bursty => LC. Set below the flattest-window CV of
    /// a +-30% sinusoidal demand cycle (~0.09) yet far above the ~0 CV of
    /// saturated batch jobs.
    double cv_threshold = 0.06;
  };

  LcBeClassifier() = default;
  explicit LcBeClassifier(Params params) : params_(params) {}

  /// Record one epoch's observed access rate (accesses/sec).
  void record_epoch(double access_rate) {
    rates_.push_back(access_rate);
    if (rates_.size() > params_.window) rates_.pop_front();
  }

  /// Coefficient of variation over the window (0 when underfilled).
  double cv() const {
    if (rates_.size() < 2) return 0.0;
    double mean = 0.0;
    for (const double r : rates_) mean += r;
    mean /= static_cast<double>(rates_.size());
    if (mean <= 0.0) return 0.0;
    double var = 0.0;
    for (const double r : rates_) var += (r - mean) * (r - mean);
    var /= static_cast<double>(rates_.size());
    return std::sqrt(var) / mean;
  }

  /// Current classification.
  bool latency_critical() const {
    if (rates_.size() < params_.min_samples) return true;  // protective default
    return cv() > params_.cv_threshold;
  }

  std::size_t samples() const { return rates_.size(); }
  const Params& params() const { return params_; }

 private:
  Params params_;
  std::deque<double> rates_;
};

}  // namespace vulcan::core

// Adaptive per-thread page-table replication (the §3.6 future-work knob:
// "automatically enabling/disabling the thread-level page table
// replication mechanism based on performance trade-offs").
//
// Benefit: every migration of a *private* page avoids IPIs to all of the
// process's other cores (targeted vs broadcast shootdown). Cost: the
// per-thread upper tables must be maintained on every mapping change, and
// they occupy memory. The advisor keeps EMAs of both sides and recommends
// replication whenever the smoothed IPI-cycle savings clear the smoothed
// maintenance cost by a configurable margin.
#pragma once

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/stats.hpp"

namespace vulcan::core {

class ReplicationAdvisor {
 public:
  struct Params {
    double ema_alpha = 0.3;
    /// Cycles of upper-table maintenance per mapping change per thread.
    double maintenance_cycles_per_fault_thread = 60.0;
    /// Savings must exceed cost by this factor before enabling (and fall
    /// below 1/margin before disabling) — hysteresis against flapping.
    double enable_margin = 1.5;
  };

  ReplicationAdvisor() : ReplicationAdvisor(Params{}) {}
  explicit ReplicationAdvisor(Params params,
                              sim::CostModel cost = sim::CostModel())
      : params_(params), cost_(cost), savings_(params.ema_alpha),
        overhead_(params.ema_alpha) {}

  /// Record one epoch of observed behaviour.
  /// @param private_migrations  migrations proven private this epoch
  /// @param threads             the process's thread count
  /// @param mapping_changes     faults + remaps this epoch
  void record_epoch(std::uint64_t private_migrations, unsigned threads,
                    std::uint64_t mapping_changes) {
    const unsigned spared =
        threads > 1 ? threads - 1 : 0;  // cores a private page spares
    const double saved =
        static_cast<double>(private_migrations) * spared *
        static_cast<double>(cost_.params().shootdown_cold_per_core);
    const double cost = static_cast<double>(mapping_changes) * threads *
                        params_.maintenance_cycles_per_fault_thread;
    savings_.update(saved);
    overhead_.update(cost);
    // Hysteresis: flip only when clearly past the margin.
    if (!enabled_ &&
        savings_.value() > params_.enable_margin * overhead_.value()) {
      enabled_ = true;
    } else if (enabled_ && params_.enable_margin * savings_.value() <
                               overhead_.value()) {
      enabled_ = false;
    }
  }

  bool replication_worthwhile() const { return enabled_; }
  double smoothed_savings() const { return savings_.value(); }
  double smoothed_overhead() const { return overhead_.value(); }

 private:
  Params params_;
  sim::CostModel cost_;
  sim::Ema savings_;
  sim::Ema overhead_;
  bool enabled_ = true;  // protective default: replication on
};

}  // namespace vulcan::core

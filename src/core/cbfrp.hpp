// Credit-Based Fair Resource Partitioning (Vulcan §3.3, Algorithm 1).
//
// Fast memory is first granted as min(demand, GFMC) — every workload's
// guaranteed equal share. Workloads demanding less than GFMC leave surplus
// ("donors"); workloads demanding more ("borrowers") receive that surplus
// unit by unit, latency-critical borrowers first. Donating earns credits,
// borrowing spends them, and the minimum-credit donor is always tapped
// first, which equalises donation burden over time (the Karma idea).
// When no surplus remains, an LC borrower may reclaim units from a random
// best-effort workload holding more than GFMC.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace vulcan::core {

struct CbfrpWorkload {
  bool latency_critical = false;
  std::uint64_t demand = 0;   ///< pages wanted (Eq. 3 output)
  double credits = 0.0;       ///< persistent across epochs
};

struct CbfrpResult {
  std::vector<std::uint64_t> alloc;  ///< pages granted per workload
  std::vector<double> credits;       ///< updated credit balances
  std::uint64_t transfers = 0;       ///< donor->borrower units moved
  std::uint64_t reclaims = 0;        ///< LC reclaims from over-GFMC BE
};

class Cbfrp {
 public:
  struct Params {
    /// Pages moved per algorithmic "unit" transfer (granularity knob; the
    /// algorithm is unit-by-unit, coarser units just run faster).
    std::uint64_t unit_pages = 16;
  };

  Cbfrp() = default;
  explicit Cbfrp(Params params) : params_(params) {}

  /// Run one partitioning round. `total_fast_pages` is the capacity under
  /// management; GFMC = total / n as the paper specifies.
  CbfrpResult partition(const std::vector<CbfrpWorkload>& workloads,
                        std::uint64_t total_fast_pages, sim::Rng& rng) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace vulcan::core

#include "core/manager.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace vulcan::core {

void VulcanManager::ensure_state(
    std::span<policy::WorkloadView> workloads) {
  for (const auto& view : workloads) {
    const auto [it, inserted] = state_.try_emplace(view.index);
    PerWorkload& pw = it->second;
    if (inserted) {
      pw.queues = policy::BiasedQueues({.mlfq_boost_heat =
                                            params_.mlfq_boost_heat});
    }
    if (!pw.qos) {
      pw.qos = std::make_unique<QosTracker>(view.as->rss_pages(),
                                            params_.fthr_alpha);
    }
  }
}

bool VulcanManager::managed(const policy::WorkloadView& view) const {
  if (!params_.whitelist.has_value()) return true;
  if (!view.workload) return true;  // anonymous views default to managed
  return params_.whitelist->contains(view.workload->spec().name);
}

bool VulcanManager::migration_gated(const mem::Topology& topo) const {
  if (!params_.enable_colloid_gate || topo.tier_count() < 2) return false;
  const double fast =
      static_cast<double>(topo.loaded_latency_ns(mem::kFastTier));
  const double slow =
      static_cast<double>(topo.loaded_latency_ns(mem::kSlowTier));
  return fast >= params_.colloid_latency_ratio * slow;
}

mem::TierId VulcanManager::placement_tier(const policy::WorkloadView& view,
                                          const mem::Topology& topo) const {
  // Quota-aware placement: fault into the fast tier only while within the
  // workload's CBFRP share (and physical availability).
  if (view.fast_quota != UINT64_MAX &&
      view.as->pages_in_tier(mem::kFastTier) >= view.fast_quota) {
    return mem::kSlowTier;
  }
  return topo.allocator(mem::kFastTier).below_watermark(0.02)
             ? mem::kSlowTier
             : mem::kFastTier;
}

void VulcanManager::plan_workload(policy::WorkloadView& view,
                                  PerWorkload& state, std::uint64_t quota) {
  const std::uint64_t in_fast = view.as->pages_in_tier(mem::kFastTier);

  // Over quota: shed the coldest fast pages (shadow remaps make clean ones
  // nearly free). Urgent — the freed frames fund other workloads' quotas.
  if (in_fast > quota) {
    std::uint64_t excess = in_fast - quota;
    std::uint64_t shed = 0;
    policy::TierHeatRanking fast_cold(view, mem::kFastTier,
                                      /*hottest_first=*/false);
    while (fast_cold.more()) {
      const std::uint64_t page = fast_cold.next();
      if (excess == 0) break;
      // Measured against the promotion cut so the recorded benefit is
      // positive for genuinely cold pages (sign convention: positive iff
      // profitable, both directions).
      view.migration->enqueue_urgent(policy::make_request(
          view, page, mem::kSlowTier, mig::CopyMode::kAsync,
          {.rank = shed++,
           .threshold = params_.promote_min_heat,
           .queue_bias = -1.0}));
      --excess;
    }
    return;  // promotions wait until the quota is respected
  }

  // Under (or at) quota: promote the hottest slow pages into the headroom,
  // then *exchange* — pair remaining hot slow pages against colder fast
  // pages (with hysteresis) so placement quality keeps improving once the
  // quota is full instead of freezing.
  std::uint64_t headroom = quota - in_fast;

  // Hottest-first slow-tier ranking, materialized lazily: the chunk
  // pre-scan, promotion loop and exchange phase all stop at a heat
  // threshold or an issue cap, so only the consumed prefix is ever pulled
  // from the heap — the full slow tier is never sorted.
  policy::TierHeatRanking slow_ranking(view, mem::kSlowTier,
                                       /*hottest_first=*/true);
  std::vector<std::uint64_t> slow_hot;
  const auto slow_have = [&](std::size_t i) -> bool {
    while (slow_hot.size() <= i && slow_ranking.more()) {
      slow_hot.push_back(slow_ranking.next());
    }
    return i < slow_hot.size();
  };
  std::size_t next_hot = 0;

  // Refresh MLFQ levels of any backlog against fresh heat.
  const vm::Vpn base = view.as->base_vpn();
  state.queues.refresh([&](vm::Vpn vpn) {
    const std::uint64_t page = vpn - base;
    return page < view.tracker->pages() ? view.tracker->heat(page) : 0.0;
  });

  // Optional huge-page-unit promotion: densely-hot chunks move whole and
  // keep their 2 MB mapping (TLB coverage at the cost of hauling the
  // chunk's cold tail into fast memory).
  std::unordered_set<std::uint64_t> chunk_promoted;
  if (params_.enable_chunk_promotion) {
    std::unordered_map<std::uint64_t, unsigned> hot_per_chunk;
    for (std::size_t i = next_hot; slow_have(i); ++i) {
      if (view.tracker->heat(slow_hot[i]) < params_.promote_min_heat) break;
      ++hot_per_chunk[slow_hot[i] / sim::kPagesPerHuge];
    }
    const auto need = static_cast<unsigned>(params_.chunk_promotion_density *
                                            sim::kPagesPerHuge);
    std::uint64_t chunks_issued = 0;
    for (const auto& [chunk, hot] : hot_per_chunk) {
      if (hot < need) continue;
      if (headroom < sim::kPagesPerHuge) break;
      auto req = policy::make_request(
          view, chunk * sim::kPagesPerHuge, mem::kFastTier,
          mig::CopyMode::kAsync);
      req.whole_chunk = true;
      policy::record_decision(view, req,
                              {.rank = chunks_issued++,
                               .threshold = params_.promote_min_heat});
      view.migration->enqueue(req);
      chunk_promoted.insert(chunk);
      headroom -= sim::kPagesPerHuge;
    }
  }

  std::uint64_t pushed = 0;
  const std::uint64_t push_cap = std::max<std::uint64_t>(headroom * 4, 512);
  for (; slow_have(next_hot); ++next_hot) {
    const std::uint64_t page = slow_hot[next_hot];
    if (view.tracker->heat(page) < params_.promote_min_heat) break;
    if (pushed >= push_cap || pushed >= headroom) break;
    if (params_.enable_chunk_promotion &&
        chunk_promoted.contains(page / sim::kPagesPerHuge)) {
      continue;  // covered by a whole-chunk request
    }
    auto req = policy::make_request(view, page, mem::kFastTier,
                                    mig::CopyMode::kAsync);
    // Queue bias: the MLFQ level the biased queues will file this under
    // (push() recomputes it after forcing the Table-1 copy mode).
    policy::record_decision(
        view, req,
        {.rank = pushed,
         .threshold = params_.promote_min_heat,
         .queue_bias = params_.enable_biased_queues
                           ? static_cast<double>(state.queues.effective_queue(req))
                           : 0.0});
    if (params_.enable_biased_queues) {
      pushed += state.queues.push(req) ? 1 : 0;
    } else {
      view.migration->enqueue(req);
      ++pushed;
    }
  }
  if (params_.enable_biased_queues && headroom > 0) {
    for (const auto& req : state.queues.drain(headroom)) {
      view.migration->enqueue(req);
    }
  }

  // Exchange phase: swap hot-slow against cold-fast while worthwhile.
  policy::TierHeatRanking fast_cold(view, mem::kFastTier,
                                    /*hottest_first=*/false);
  const std::uint64_t exchange_cap =
      std::max<std::uint64_t>(64, quota / 8);
  std::uint64_t exchanged = 0;
  for (; slow_have(next_hot) && fast_cold.more(); ++next_hot) {
    if (exchanged >= exchange_cap) break;
    const std::uint64_t hot = slow_hot[next_hot];
    const std::uint64_t cold = fast_cold.next();
    const double hot_heat = view.tracker->heat(hot);
    if (hot_heat < params_.promote_min_heat) break;
    const double cold_heat = std::max(view.tracker->heat(cold), 1e-9);
    if (hot_heat <= params_.exchange_hysteresis * cold_heat) {
      break;  // remaining swaps would churn pages of comparable heat
    }
    // Demotion threshold = the paired hot page's heat, so the recorded
    // benefit (threshold - heat) is the swap's heat gain; the promotion's
    // is its margin over the hysteresis rule it had to clear.
    view.migration->enqueue(policy::make_request(
        view, cold, mem::kSlowTier, mig::CopyMode::kAsync,
        {.rank = exchanged, .threshold = hot_heat}));
    auto promote = policy::make_request(view, hot, mem::kFastTier,
                                        mig::CopyMode::kAsync);
    if (params_.enable_biased_queues) {
      promote.mode = policy::BiasedQueues::mode_for(promote.write_intensive);
    }
    policy::record_decision(
        view, promote,
        {.rank = exchanged,
         .threshold = params_.exchange_hysteresis * cold_heat});
    view.migration->enqueue(promote);
    ++exchanged;
  }
}

void VulcanManager::plan_epoch(std::span<policy::WorkloadView> all_views,
                               mem::Topology& topo, sim::Rng& rng) {
  ensure_state(all_views);

  // §3.2 whitelisting: unmanaged workloads keep default kernel behaviour —
  // no quota, no planned migrations.
  std::vector<policy::WorkloadView*> views;
  views.reserve(all_views.size());
  for (auto& view : all_views) {
    if (managed(view)) {
      views.push_back(&view);
    } else {
      view.fast_quota = UINT64_MAX;
    }
  }
  const std::size_t n = views.size();
  if (n == 0) return;
  const auto workloads = [&](std::size_t i) -> policy::WorkloadView& {
    return *views[i];
  };

  const auto managed_pages = static_cast<std::uint64_t>(
      params_.managed_capacity_frac *
      static_cast<double>(topo.capacity_pages(mem::kFastTier)));
  const std::uint64_t gfmc = managed_pages / n;

  // (1)-(2): QoS + classification updates. The QoS equations take RSS_i as
  // the *actively used* memory (paper §3.3), measured from the heat tracker
  // and capped by the mapped footprint.
  for (std::size_t i = 0; i < n; ++i) {
    auto& view = workloads(i);
    auto& pw = state_.at(view.index);
    pw.qos->record_epoch(view.epoch_fast_accesses, view.epoch_slow_accesses);
    pw.classifier.record_epoch(view.epoch_fast_accesses +
                               view.epoch_slow_accesses);
    const std::uint64_t active =
        view.tracker->count_at_least(params_.active_min_heat);
    const auto active_rss = std::max<std::uint64_t>(
        1, std::min(view.as->rss_pages(),
                    static_cast<std::uint64_t>(
                        params_.active_slack * static_cast<double>(active))));
    pw.qos->set_rss_pages(active_rss);
  }

  // (3): demands and partitioning.
  std::vector<CbfrpWorkload> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& view = workloads(i);
    auto& pw = state_.at(view.index);
    CbfrpWorkload in;
    in.latency_critical = pw.classifier.latency_critical();
    const std::uint64_t eq3 = pw.qos->demand(
        view.as->pages_in_tier(mem::kFastTier), gfmc, params_.demand_gain);
    const std::uint64_t knee = std::min(
        view.as->rss_pages(),
        view.tracker->coverage_pages(params_.demand_floor_coverage));
    in.demand = std::max(eq3, knee);
    in.credits = pw.credits;
    inputs.push_back(in);
  }

  std::vector<std::uint64_t> quotas(n, gfmc);
  if (params_.enable_cbfrp) {
    const Cbfrp cbfrp({.unit_pages = params_.cbfrp_unit_pages});
    const CbfrpResult result = cbfrp.partition(inputs, managed_pages, rng);
    quotas = result.alloc;
    for (std::size_t i = 0; i < n; ++i) {
      state_.at(workloads(i).index).credits = result.credits[i];
    }
    // Observability: per-workload partition outcome (a demand fully
    // covered is a promotion, a shortfall a rejection), plus the round's
    // surplus-transfer and LC-reclaim counts.
    obs().counter("cbfrp.transfers").inc(result.transfers);
    obs().counter("cbfrp.reclaims").inc(result.reclaims);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& view = workloads(i);
      const bool won = result.alloc[i] >= inputs[i].demand;
      obs()
          .for_workload(static_cast<std::int32_t>(view.index))
          .event(won ? obs::EventKind::kCbfrpPromotion
                     : obs::EventKind::kCbfrpRejection,
                 result.alloc[i], inputs[i].demand, result.credits[i]);
      // Per-app partition outcome counters, keyed the same way the
      // attribution layer keys its metrics (vulcan_report joins on them).
      obs()
          .counter(std::string(won ? "cbfrp.promotions" : "cbfrp.rejections") +
                   "{app=" + std::to_string(view.index) + "}")
          .inc();
    }
    // Work conservation: capacity nobody demanded stays usable by anyone
    // (the physical allocator arbitrates). Strict quotas only bind under
    // contention, when total demand consumes the managed capacity.
    std::uint64_t granted = 0;
    for (const auto a : quotas) granted += a;
    const std::uint64_t leftover =
        managed_pages > granted ? managed_pages - granted : 0;
    for (auto& q : quotas) q += leftover;
  }

  // (4): per-workload planning + snapshot for observers, plus the §3.6
  // extensions: the Colloid gate pauses promotions under bandwidth
  // contention, and the replication advisor toggles targeted shootdowns
  // from measured benefit.
  const bool gated = migration_gated(topo);
  // Snapshot indexed by workload index (observers read qos()[index]):
  // sized to the highest *live* index, not every index ever admitted.
  std::size_t snapshot_size = 0;
  for (const auto& view : all_views) {
    snapshot_size = std::max<std::size_t>(snapshot_size, view.index + 1);
  }
  qos_snapshot_.assign(snapshot_size, WorkloadQos{});
  for (std::size_t i = 0; i < n; ++i) {
    auto& view = workloads(i);
    auto& pw = state_.at(view.index);
    view.fast_quota = quotas[i];

    if (params_.enable_adaptive_replication && view.migration) {
      mig::Migrator& migrator = view.migration->migrator();
      const auto& totals = migrator.totals();
      const std::uint64_t private_delta =
          totals.private_migrated - pw.last_private_migrated;
      pw.last_private_migrated = totals.private_migrated;
      const std::uint64_t faults = view.as->faulted_pages();
      const std::uint64_t fault_delta = faults - pw.last_faulted;
      pw.last_faulted = faults;
      pw.advisor.record_epoch(private_delta, view.as->thread_count(),
                              fault_delta);
      migrator.set_targeted_shootdown(params_.enable_replication &&
                                      pw.advisor.replication_worthwhile());
    }

    {
      // One plan span per workload (arg = granted quota) so the timeline
      // shows which app each slice of the policy round worked for.
      obs::ScopedSpan plan_span =
          obs()
              .for_workload(static_cast<std::int32_t>(view.index))
              .span(obs::SpanKind::kPlanWorkload,
                    static_cast<double>(quotas[i]));
      if (gated) {
        // Suspend promotions; still honour quota overflows (demotions
        // relieve the very contention that tripped the gate).
        const std::uint64_t in_fast = view.as->pages_in_tier(mem::kFastTier);
        if (in_fast > quotas[i]) plan_workload(view, pw, quotas[i]);
      } else {
        plan_workload(view, pw, quotas[i]);
      }
    }

    WorkloadQos& q = qos_snapshot_[view.index];
    q.fthr = pw.qos->fthr();
    q.gpt = pw.qos->guaranteed_target(gfmc);
    q.demand = inputs[i].demand;
    q.quota = quotas[i];
    q.credits = pw.credits;
    q.latency_critical = inputs[i].latency_critical;
  }
}

}  // namespace vulcan::core

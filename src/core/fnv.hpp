// FNV-1a 64-bit hashing.
//
// One incremental, seedable implementation shared by the differential
// fuzzer's artefact digests (check/fuzz) and the provenance-export
// byte-compares in CI (vulcan_pagescope / vulcan_check_fuzz print these
// digests so divergent runs are recognisable from the log alone). Inline
// and header-only, like core::jain_index, so every consumer shares the
// definition the unit tests pin to the reference vectors.
#pragma once

#include <cstdint>
#include <string_view>

namespace vulcan::core {

inline constexpr std::uint64_t kFnv1aOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001B3ULL;

/// Fold `bytes` into a running FNV-1a state. Seed with kFnv1aOffset and
/// chain calls to digest a sequence of buffers incrementally; the result
/// equals hashing the concatenation.
inline constexpr std::uint64_t fnv1a(std::uint64_t hash,
                                     std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnv1aPrime;
  }
  return hash;
}

/// One-shot convenience: FNV-1a of a single buffer.
inline constexpr std::uint64_t fnv1a(std::string_view bytes) {
  return fnv1a(kFnv1aOffset, bytes);
}

}  // namespace vulcan::core

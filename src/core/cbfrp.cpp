#include "core/cbfrp.hpp"

#include <algorithm>
#include <cassert>

namespace vulcan::core {

CbfrpResult Cbfrp::partition(const std::vector<CbfrpWorkload>& workloads,
                             std::uint64_t total_fast_pages,
                             sim::Rng& rng) const {
  const std::size_t n = workloads.size();
  CbfrpResult result;
  result.credits.reserve(n);
  for (const auto& w : workloads) result.credits.push_back(w.credits);
  result.alloc.assign(n, 0);
  if (n == 0) return result;

  const std::uint64_t gfmc = total_fast_pages / n;
  const std::uint64_t unit = std::max<std::uint64_t>(1, params_.unit_pages);

  // Line 1-2: baseline allocation, capped at the guaranteed share.
  for (std::size_t i = 0; i < n; ++i) {
    result.alloc[i] = std::min(workloads[i].demand, gfmc);
  }

  // Lines 3-5: borrower/donor sets. A donor's surplus is the untaken part
  // of its guaranteed share.
  auto is_borrower = [&](std::size_t i) {
    return result.alloc[i] < workloads[i].demand;
  };
  std::vector<std::uint64_t> surplus(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    surplus[i] = gfmc - result.alloc[i];  // >= 0 by construction
  }

  auto pick_borrower = [&]() -> std::ptrdiff_t {
    // LC borrowers first; within a class, the largest gap (deterministic).
    std::ptrdiff_t best = -1;
    bool best_lc = false;
    std::uint64_t best_gap = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_borrower(i)) continue;
      const bool lc = workloads[i].latency_critical;
      const std::uint64_t gap = workloads[i].demand - result.alloc[i];
      if (best < 0 || (lc && !best_lc) ||
          (lc == best_lc && gap > best_gap)) {
        best = static_cast<std::ptrdiff_t>(i);
        best_lc = lc;
        best_gap = gap;
      }
    }
    return best;
  };

  auto pick_donor = [&]() -> std::ptrdiff_t {
    // Line 9: donor with minimum credits.
    std::ptrdiff_t best = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (surplus[i] == 0) continue;
      if (best < 0 || result.credits[i] <
                          result.credits[static_cast<std::size_t>(best)]) {
        best = static_cast<std::ptrdiff_t>(i);
      }
    }
    return best;
  };

  auto is_victim = [&](std::size_t i, std::size_t borrower) {
    return i != borrower && !workloads[i].latency_critical &&
           result.alloc[i] > gfmc;
  };
  auto pick_be_victim = [&](std::size_t borrower) -> std::ptrdiff_t {
    // Line 12: random BE task with alloc above GFMC. Two passes — count,
    // then walk to the drawn index — so the per-unit transfer loop does
    // not build a candidate vector every iteration. The rng draw and the
    // chosen victim are identical to the materialised version.
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) count += is_victim(i, borrower);
    if (count == 0) return -1;
    std::uint64_t k = rng.below(count);
    for (std::size_t i = 0; i < n; ++i) {
      if (is_victim(i, borrower) && k-- == 0) {
        return static_cast<std::ptrdiff_t>(i);
      }
    }
    return -1;
  };

  // Lines 6-17: the transfer loop. Bounded by total capacity / unit.
  std::uint64_t guard = total_fast_pages / unit + n + 1;
  while (guard-- > 0) {
    const std::ptrdiff_t bs = pick_borrower();
    if (bs < 0) break;  // all demands met
    const auto b = static_cast<std::size_t>(bs);
    const std::uint64_t gap = workloads[b].demand - result.alloc[b];

    const std::ptrdiff_t ds = pick_donor();
    if (ds >= 0) {
      const auto d = static_cast<std::size_t>(ds);
      // Fast path: with a single borrower and a single donor the picks are
      // forced every step, so stream all full-unit transfers of this pair
      // in one go instead of re-scanning per unit. Credits still accrue
      // one unit at a time — repeated += 1.0 rounds differently from
      // += k for arbitrary doubles, and the result must stay bit-identical
      // to the stepwise loop.
      std::size_t borrowers = 0;
      std::size_t donors = 0;
      for (std::size_t i = 0; i < n; ++i) {
        borrowers += is_borrower(i);
        donors += surplus[i] > 0;
      }
      const std::uint64_t k = std::min(
          {gap / unit, surplus[d] / unit, guard + 1});
      if (borrowers == 1 && donors == 1 && k > 1) {
        surplus[d] -= k * unit;
        result.alloc[b] += k * unit;
        for (std::uint64_t j = 0; j < k; ++j) {
          result.credits[d] += 1.0;
          result.credits[b] -= 1.0;
        }
        result.transfers += k;
        guard -= k - 1;
        continue;
      }
      const std::uint64_t amount = std::min({gap, surplus[d], unit});
      surplus[d] -= amount;
      result.alloc[b] += amount;
      // Karma bookkeeping: donating earns, borrowing spends.
      const double units = static_cast<double>(amount) /
                           static_cast<double>(unit);
      result.credits[d] += units;
      result.credits[b] -= units;
      ++result.transfers;
      continue;
    }

    if (workloads[b].latency_critical) {
      // Mirror of the donor streaming above: with a single borrower and a
      // single reclaim victim, every unit step draws rng.below(1) (which
      // still advances the generator) and moves one unit from the same
      // victim. Stream the full-unit steps, consuming exactly one draw
      // per step so the rng sequence matches the stepwise loop.
      std::size_t borrowers = 0;
      std::size_t victims = 0;
      std::size_t v = 0;
      for (std::size_t i = 0; i < n; ++i) {
        borrowers += is_borrower(i);
        if (is_victim(i, b)) {
          ++victims;
          v = i;
        }
      }
      if (borrowers == 1 && victims == 1) {
        const std::uint64_t k = std::min(
            {gap / unit, (result.alloc[v] - gfmc) / unit, guard + 1});
        if (k > 1) {
          result.alloc[v] -= k * unit;
          result.alloc[b] += k * unit;
          for (std::uint64_t j = 0; j < k; ++j) {
            (void)rng.below(1);
            result.credits[v] += 1.0;
            result.credits[b] -= 1.0;
          }
          result.reclaims += k;
          guard -= k - 1;
          continue;
        }
      }
      const std::ptrdiff_t vs = pick_be_victim(b);
      if (vs >= 0) {
        const auto v = static_cast<std::size_t>(vs);
        const std::uint64_t amount =
            std::min({gap, result.alloc[v] - gfmc, unit});
        result.alloc[v] -= amount;
        result.alloc[b] += amount;
        const double units = static_cast<double>(amount) /
                             static_cast<double>(unit);
        result.credits[v] += units;
        result.credits[b] -= units;
        ++result.reclaims;
        continue;
      }
    }
    break;  // line 15: nothing left to give
  }

  // Invariant: never over-allocate the managed capacity.
  std::uint64_t total = 0;
  for (const auto a : result.alloc) total += a;
  assert(total <= total_fast_pages);
  return result;
}

}  // namespace vulcan::core

// Fairness metrics (Vulcan §5.3):
//
//   Jain's fairness index      J(x) = (Σx)² / (N·Σx²)      in (0, 1]
//   FTHR-weighted Cumulative Jain's Fairness Index (Eq. 4):
//       X_i  = Σ_t x_i(t) · FTHR_i(t)
//       CFI  = (ΣX)² / (N·ΣX²)
//
// x_i(t) is workload i's fast-memory allocation at epoch t; weighting by
// the fast-tier hit ratio makes the index measure *useful* allocation, not
// just quantity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vulcan::core {

/// Jain's index over any non-negative vector. Returns 1.0 for empty/all-zero
/// input (vacuously fair). Inline so header-only consumers (obs::AppStats,
/// vulcan_report) share the one definition the fairness tests exercise.
inline double jain_index(std::span<const double> x) {
  double sum = 0.0, sum_sq = 0.0;
  for (const double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (x.empty() || sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(x.size()) * sum_sq);
}

/// Jain's index over per-app progress rates derived from mean slowdowns
/// (progress_i = 1 / slowdown_i). A non-positive slowdown means "no
/// epochs recorded for this app yet" and is skipped — not counted as
/// zero progress. The live obs::AppStats path and the offline
/// report_jain path once disagreed on exactly that convention; both now
/// call this one definition and a regression test pins them together.
inline double jain_from_slowdowns(std::span<const double> slowdowns) {
  std::vector<double> progress;
  progress.reserve(slowdowns.size());
  for (const double s : slowdowns) {
    if (s > 0.0) progress.push_back(1.0 / s);
  }
  return jain_index(progress);
}

/// Accumulates Eq. 4 over epochs.
class CfiAccumulator {
 public:
  explicit CfiAccumulator(std::size_t workloads = 0) : x_(workloads, 0.0) {}

  /// Record one epoch: `alloc[i]` fast pages held, `fthr[i]` hit ratio.
  void record_epoch(std::span<const double> alloc,
                    std::span<const double> fthr);

  /// Eq. 4 over everything recorded so far.
  double cfi() const;

  std::span<const double> cumulative() const { return x_; }
  std::uint64_t epochs() const { return epochs_; }

 private:
  std::vector<double> x_;
  std::uint64_t epochs_ = 0;
};

}  // namespace vulcan::core

// VulcanManager: the migration daemon's brain (§3.2-§3.5 assembled).
//
// Per epoch it (1) updates each managed workload's FTHR/GPT QoS state,
// (2) classifies workloads LC/BE from their observed utilisation pattern,
// (3) runs CBFRP to partition the fast tier into per-workload quotas,
// (4) plans demotions for over-quota workloads and promotions through the
// biased priority queues (Table 1 strategies: async for read-intensive,
// sync for write-intensive, private before shared), and (5) executes via
// per-application migration threads with the optimised mechanism
// (no cross-CPU prep broadcast, sharer-targeted shootdowns, shadowing).
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/advisor.hpp"
#include "core/cbfrp.hpp"
#include "core/classifier.hpp"
#include "core/qos.hpp"
#include "policy/biased.hpp"
#include "policy/policy.hpp"

namespace vulcan::core {

class VulcanManager final : public policy::SystemPolicy {
 public:
  struct Params {
    double fthr_alpha = 0.8;          ///< Eq. 2 weighting
    double demand_gain = 1.0;         ///< Eq. 3 scale
    /// The paper defines RSS_i as "the memory actively used by workload i";
    /// we measure it as pages with recent heat, inflated by this slack to
    /// absorb sampling undercount.
    double active_slack = 1.25;
    double active_min_heat = 0.5;     ///< heat floor counting a page active
    /// Demand is floored at the working-set knee: the smallest page count
    /// covering this fraction of the workload's heat mass. Without the
    /// floor, Eq. 3's negative branch would let a *satisfied* workload's
    /// demand collapse below its hot set and thrash.
    double demand_floor_coverage = 0.90;
    /// A slow page replaces a fast page only when hotter by this factor
    /// (anti-thrash hysteresis for the exchange path).
    double exchange_hysteresis = 1.5;
    std::uint64_t cbfrp_unit_pages = 16;
    double mlfq_boost_heat = 32.0;
    double promote_min_heat = 0.5;    ///< ignore noise-level heat
    unsigned online_cpus = 32;
    unsigned async_max_retries = 3;
    /// Fraction of the fast tier CBFRP manages (rest is kernel slack).
    double managed_capacity_frac = 0.96;
    // Ablation switches (all on = full Vulcan):
    bool enable_cbfrp = true;          ///< off => uniform static partition
    bool enable_biased_queues = true;  ///< off => FIFO, all-async
    bool enable_replication = true;    ///< off => broadcast shootdowns
    bool enable_opt_prep = true;       ///< off => baseline preparation
    bool enable_shadowing = true;

    // §3.6 extensions (off by default; the paper lists them as future
    // optimisations):
    /// Colloid-style migration gate: suspend promotions while the fast
    /// tier's *loaded* latency no longer beats the slow tier's by at
    /// least 1/colloid_latency_ratio (bandwidth contention regime).
    bool enable_colloid_gate = false;
    double colloid_latency_ratio = 0.90;
    /// Adaptive replication: toggle targeted shootdowns per workload
    /// based on the measured IPI-savings vs table-maintenance trade.
    bool enable_adaptive_replication = false;
    /// Offload page copies to a DMA engine (HeMem-style).
    bool enable_dma_copy = false;
    /// Promote densely-hot 2 MB chunks as whole huge pages instead of
    /// splitting (the Memtis-style page-size alternative §3.4 argues
    /// against; off = the paper's split-on-promotion behaviour).
    bool enable_chunk_promotion = false;
    /// Fraction of a chunk's pages that must be hot to promote it whole.
    double chunk_promotion_density = 0.70;
    /// Whitelist (§3.2 access control): when set, only workloads whose
    /// spec name appears here are managed — others are left to default
    /// kernel placement with no migration.
    std::optional<std::set<std::string>> whitelist;
  };

  /// QoS snapshot per workload (drives the Fig. 9 timeline).
  struct WorkloadQos {
    double fthr = 0.0;
    double gpt = 1.0;
    std::uint64_t demand = 0;
    std::uint64_t quota = 0;
    double credits = 0.0;
    bool latency_critical = true;
  };

  VulcanManager() = default;
  explicit VulcanManager(Params params) : params_(params) {}

  void plan_epoch(std::span<policy::WorkloadView> workloads,
                  mem::Topology& topo, sim::Rng& rng) override;

  mem::TierId placement_tier(const policy::WorkloadView& view,
                             const mem::Topology& topo) const override;

  mig::Migrator::Config migrator_config() const override {
    mig::Migrator::Config cfg;
    cfg.mechanism.optimized_prep = params_.enable_opt_prep;
    cfg.mechanism.targeted_shootdown = params_.enable_replication;
    cfg.mechanism.online_cpus = params_.online_cpus;
    cfg.shadowing = params_.enable_shadowing;
    cfg.dma_copy = params_.enable_dma_copy;
    cfg.async_max_retries = params_.async_max_retries;
    return cfg;
  }

  std::string_view name() const override { return "vulcan"; }

  /// Fleet churn: drop the departed workload's QoS tracker, classifier
  /// history, biased-queue backlog and credits. Its hash-map slot is
  /// erased outright, so a long-running system's state stays proportional
  /// to the *live* app count, not every app that ever existed.
  void on_workload_departed(unsigned index) override {
    state_.erase(index);
  }

  const std::vector<WorkloadQos>& qos() const { return qos_snapshot_; }
  const Params& params() const { return params_; }

 private:
  struct PerWorkload {
    std::unique_ptr<QosTracker> qos;
    LcBeClassifier classifier;
    policy::BiasedQueues queues;
    ReplicationAdvisor advisor;
    double credits = 0.0;
    std::uint64_t last_private_migrated = 0;
    std::uint64_t last_faulted = 0;
  };

  void ensure_state(std::span<policy::WorkloadView> workloads);
  void plan_workload(policy::WorkloadView& view, PerWorkload& state,
                     std::uint64_t quota);
  bool managed(const policy::WorkloadView& view) const;
  /// Colloid gate: true when the fast tier currently offers no meaningful
  /// latency advantage, so promotions should pause (§3.6).
  bool migration_gated(const mem::Topology& topo) const;

  Params params_;
  /// Per-workload state, keyed by workload index. A flat hash instead of a
  /// dense vector: fleet batteries churn through hundreds of short-lived
  /// indices, and a vector indexed by "largest index ever" would both leak
  /// departed-app state and make the per-epoch snapshot reset O(total ever
  /// admitted) instead of O(live).
  std::unordered_map<unsigned, PerWorkload> state_;
  std::vector<WorkloadQos> qos_snapshot_;
};

}  // namespace vulcan::core

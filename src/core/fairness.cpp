#include "core/fairness.hpp"

#include <cassert>

namespace vulcan::core {

void CfiAccumulator::record_epoch(std::span<const double> alloc,
                                  std::span<const double> fthr) {
  assert(alloc.size() == fthr.size());
  if (alloc.size() > x_.size()) x_.resize(alloc.size(), 0.0);
  for (std::size_t i = 0; i < x_.size(); ++i) {
    x_[i] += alloc[i] * fthr[i];
  }
  ++epochs_;
}

double CfiAccumulator::cfi() const { return jain_index(x_); }

}  // namespace vulcan::core

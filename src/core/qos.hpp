// Tiered-memory QoS accounting (Vulcan §3.3).
//
//   GPT_i  = GFMC / RSS_i, clamped to 1            (guaranteed perf target)
//   H̄_i,t  = Σ a_fast / Σ (a_fast + a_slow)         (Eq. 1, epoch hit ratio)
//   FTHR_i = α·H̄_i,t + (1-α)·H̄_i,t-1, α = 0.8       (Eq. 2, EMA)
//   demand_i = alloc_i + (GPT_i - FTHR_i)·RSS_i·log²(RSS_i)·gain   (Eq. 3)
//
// Eq. 3's log²(RSS) factor takes RSS in GiB (paper-world units; the
// simulator's capacity scaling cancels out) and the result is clamped to
// [0, RSS]: the formula is an aggressive proportional controller whose
// magnitude CBFRP arbitrates.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace vulcan::core {

class QosTracker {
 public:
  explicit QosTracker(std::uint64_t rss_pages, double alpha = 0.8)
      : rss_pages_(rss_pages), fthr_(alpha) {}

  /// GPT_i for a given per-workload guaranteed share (GFMC) in pages.
  double guaranteed_target(std::uint64_t gfmc_pages) const {
    if (rss_pages_ == 0) return 1.0;
    return std::min(1.0, static_cast<double>(gfmc_pages) /
                             static_cast<double>(rss_pages_));
  }

  /// Fold one epoch's access census into the FTHR EMA (Eqs. 1-2).
  /// Epochs with no accesses leave the estimate unchanged.
  void record_epoch(double fast_accesses, double slow_accesses) {
    const double total = fast_accesses + slow_accesses;
    if (total <= 0.0) return;
    fthr_.update(fast_accesses / total);
  }

  double fthr() const { return fthr_.primed() ? fthr_.value() : 0.0; }
  bool primed() const { return fthr_.primed(); }

  /// Eq. 3 demand update, clamped to [0, RSS].
  std::uint64_t demand(std::uint64_t alloc_pages, std::uint64_t gfmc_pages,
                       double gain = 1.0) const {
    const double gpt = guaranteed_target(gfmc_pages);
    const double rss = static_cast<double>(rss_pages_);
    // Pages -> paper-world GiB for the logarithmic scale factor.
    const double rss_gib = std::max(
        1.0, rss * static_cast<double>(sim::kPageSize) *
                 static_cast<double>(sim::kCapacityScale) / (1024.0 * 1024.0 * 1024.0));
    const double log2r = std::log2(rss_gib);
    const double adjustment = (gpt - fthr()) * rss * log2r * log2r * gain;
    const double target = static_cast<double>(alloc_pages) + adjustment;
    return static_cast<std::uint64_t>(std::clamp(target, 0.0, rss));
  }

  std::uint64_t rss_pages() const { return rss_pages_; }
  void set_rss_pages(std::uint64_t rss) { rss_pages_ = rss; }

 private:
  std::uint64_t rss_pages_;
  sim::Ema fthr_;
};

}  // namespace vulcan::core

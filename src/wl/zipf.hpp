// Zipfian item generator (Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases", SIGMOD'94) — the same construction YCSB uses.
// The paper's migration-policy microbenchmarks (§5.2) generate accesses to
// the working set "with a Zipfian distribution"; this is that generator.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"

namespace vulcan::wl {

class ZipfianGenerator {
 public:
  /// @param items  number of distinct items (ranks 0..items-1, rank 0 hottest)
  /// @param theta  skew in [0,1); YCSB default 0.99
  /// @throws std::invalid_argument when items == 0 or theta is outside
  ///         [0, 1) — theta == 1.0 makes the construction undefined.
  explicit ZipfianGenerator(std::uint64_t items, double theta = 0.99);

  /// Draw a rank: 0 is the most popular item.
  std::uint64_t next(sim::Rng& rng) const;

  std::uint64_t items() const { return items_; }
  double theta() const { return theta_; }

  /// Probability mass of rank `k` (for test cross-checks).
  double pmf(std::uint64_t k) const;

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t items_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2_;
  double pow_half_theta_;  ///< pow(0.5, theta), hoisted off the draw path
};

/// Scrambled variant: same popularity *distribution*, but popular ranks are
/// scattered pseudo-randomly across the item space (YCSB's
/// ScrambledZipfianGenerator) so hot pages are not physically contiguous.
class ScrambledZipfianGenerator {
 public:
  explicit ScrambledZipfianGenerator(std::uint64_t items, double theta = 0.99)
      : inner_(items, theta) {}

  std::uint64_t next(sim::Rng& rng) const {
    const std::uint64_t rank = inner_.next(rng);
    // fmix64 (MurmurHash3 finaliser): a measurably good bijective scramble.
    std::uint64_t h = rank;
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    h *= 0xC4CEB9FE1A85EC53ULL;
    h ^= h >> 33;
    return h % inner_.items();
  }

  std::uint64_t items() const { return inner_.items(); }

 private:
  ZipfianGenerator inner_;
};

}  // namespace vulcan::wl

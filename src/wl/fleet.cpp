#include "wl/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string_view>
#include <utility>

#include "core/fnv.hpp"
#include "sim/rng.hpp"

namespace vulcan::wl {

namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

/// Uniform double in [lo, hi) from the app's private RNG.
double jitter(sim::Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * rng.uniform();
}

}  // namespace

std::uint64_t fleet_app_seed(std::uint64_t fleet_seed, std::uint32_t app_id) {
  std::uint64_t h = core::kFnv1aOffset;
  h = core::fnv1a(h, std::string_view(reinterpret_cast<const char*>(&fleet_seed),
                                      sizeof(fleet_seed)));
  h = core::fnv1a(h, std::string_view(reinterpret_cast<const char*>(&app_id),
                                      sizeof(app_id)));
  return h;
}

const char* fleet_archetype_name(FleetArchetype archetype) {
  switch (archetype) {
    case FleetArchetype::kLcService: return "lc_service";
    case FleetArchetype::kBeBatch: return "be_batch";
    case FleetArchetype::kAntagonist: return "antagonist";
  }
  return "unknown";
}

double profile_multiplier(const RateProfile& profile, double sim_seconds) {
  double m = profile.base;
  if (profile.diurnal_amplitude > 0.0 && profile.diurnal_period_s > 0.0) {
    m *= 1.0 + profile.diurnal_amplitude *
                   std::sin(kTau * sim_seconds / profile.diurnal_period_s +
                            profile.diurnal_phase);
  }
  if (profile.burst_period_s > 0.0 && profile.burst_duty > 0.0) {
    const double phase =
        std::fmod(sim_seconds + profile.burst_phase_s, profile.burst_period_s) /
        profile.burst_period_s;
    if (phase < profile.burst_duty) m *= profile.burst_multiplier;
  }
  return std::max(m, 0.05);
}

FleetWorkload::FleetWorkload(WorkloadSpec spec, std::uint64_t shared_pages,
                             std::unique_ptr<AccessPattern> shared_pattern,
                             std::unique_ptr<AccessPattern> private_pattern,
                             std::uint64_t seed, FleetArchetype archetype,
                             RateProfile profile)
    : Workload(std::move(spec), shared_pages, std::move(shared_pattern),
               std::move(private_pattern), seed),
      archetype_(archetype),
      profile_(profile) {}

double FleetWorkload::rate_multiplier(double sim_seconds) const {
  return profile_multiplier(profile_, sim_seconds);
}

std::unique_ptr<FleetWorkload> make_fleet_app(std::uint32_t app_id,
                                              FleetArchetype archetype,
                                              std::uint64_t fleet_seed,
                                              double footprint_scale) {
  const std::uint64_t seed = fleet_app_seed(fleet_seed, app_id);
  // Parameter jitter draws come from a throwaway RNG on the app seed; the
  // workload's access stream forks from the same seed inside the Workload
  // base, so both are functions of (fleet_seed, app_id) alone.
  sim::Rng rng(seed);

  WorkloadSpec spec;
  spec.name = std::string(fleet_archetype_name(archetype)) + "-" +
              std::to_string(app_id);
  spec.threads = 2;

  RateProfile profile;
  std::uint64_t shared_pages = 0;
  std::unique_ptr<AccessPattern> shared;
  std::unique_ptr<AccessPattern> priv;

  const auto scale_pages = [&](double lo, double hi) {
    const double pages = jitter(rng, lo, hi) * footprint_scale;
    return std::max<std::uint64_t>(static_cast<std::uint64_t>(pages),
                                   4 * spec.threads);
  };

  switch (archetype) {
    case FleetArchetype::kLcService: {
      spec.service_class = ServiceClass::kLatencyCritical;
      spec.rss_pages = scale_pages(192.0, 448.0);
      spec.accesses_per_sec_per_thread = jitter(rng, 3e5, 8e5);
      spec.compute_cycles_per_access = jitter(rng, 50.0, 90.0);
      spec.latency_exposure = 1.0;  // dependent lookups: fully exposed
      spec.shared_access_fraction = jitter(rng, 0.6, 0.85);
      shared_pages = spec.rss_pages / 2;
      shared = std::make_unique<SkewedHotsetPattern>(
          shared_pages, /*hot_fraction=*/0.1, /*hot_probability=*/0.9,
          /*write_ratio=*/0.1);
      priv = std::make_unique<UniformPattern>(1, 0.1);  // per-thread slice
      profile.diurnal_amplitude = jitter(rng, 0.2, 0.4);
      profile.diurnal_period_s = jitter(rng, 15.0, 40.0);
      profile.diurnal_phase = jitter(rng, 0.0, kTau);
      break;
    }
    case FleetArchetype::kBeBatch: {
      spec.service_class = ServiceClass::kBestEffort;
      spec.rss_pages = scale_pages(384.0, 896.0);
      spec.accesses_per_sec_per_thread = jitter(rng, 1e6, 2e6);
      spec.compute_cycles_per_access = jitter(rng, 30.0, 60.0);
      spec.latency_exposure = 0.3;  // prefetch-friendly streaming
      spec.shared_access_fraction = jitter(rng, 0.05, 0.2);
      shared_pages = std::max<std::uint64_t>(spec.rss_pages / 16, 8);
      shared = std::make_unique<HotsetPattern>(shared_pages, 0.25, 0.8, 0.05);
      priv = std::make_unique<SequentialPattern>(1, 0.05);
      profile.base = jitter(rng, 0.9, 1.1);
      break;
    }
    case FleetArchetype::kAntagonist: {
      spec.service_class = ServiceClass::kBestEffort;
      spec.rss_pages = scale_pages(512.0, 1024.0);
      spec.accesses_per_sec_per_thread = jitter(rng, 1.5e6, 3e6);
      spec.compute_cycles_per_access = jitter(rng, 10.0, 30.0);
      spec.latency_exposure = 0.6;
      spec.shared_access_fraction = jitter(rng, 0.3, 0.5);
      shared_pages = spec.rss_pages / 4;
      shared = std::make_unique<UniformPattern>(shared_pages, 0.5);
      priv = std::make_unique<UniformPattern>(1, 0.5);
      profile.base = jitter(rng, 0.4, 0.7);
      profile.burst_multiplier = jitter(rng, 2.0, 4.0);
      profile.burst_period_s = jitter(rng, 8.0, 20.0);
      profile.burst_duty = jitter(rng, 0.2, 0.4);
      profile.burst_phase_s = jitter(rng, 0.0, profile.burst_period_s);
      break;
    }
  }
  spec.wss_pages = spec.rss_pages / 2;

  // Private patterns address a per-thread slice whose exact size only the
  // Workload base knows; rebuild them at the real slice size.
  const std::uint64_t slice =
      std::max<std::uint64_t>((spec.rss_pages - shared_pages) / spec.threads, 1);
  if (archetype == FleetArchetype::kBeBatch) {
    priv = std::make_unique<SequentialPattern>(slice, 0.05);
  } else if (archetype == FleetArchetype::kAntagonist) {
    priv = std::make_unique<UniformPattern>(slice, 0.5);
  } else {
    priv = std::make_unique<UniformPattern>(slice, 0.1);
  }

  return std::make_unique<FleetWorkload>(std::move(spec), shared_pages,
                                         std::move(shared), std::move(priv),
                                         seed, archetype, profile);
}

}  // namespace vulcan::wl

#include "wl/apps.hpp"

#include <cmath>

#include "sim/config.hpp"

namespace vulcan::wl {

namespace {
std::uint64_t gb_pages(double gb) {
  return sim::bytes_to_pages(sim::scaled_gib(gb));
}
}  // namespace

// ---------------------------------------------------------------- Memcached

WorkloadSpec MemcachedModel::default_spec() {
  WorkloadSpec s;
  s.name = "memcached";
  s.service_class = ServiceClass::kLatencyCritical;
  s.rss_pages = gb_pages(51);                     // Table 2
  s.wss_pages = s.rss_pages / 5;                  // the hot key set
  s.threads = 8;
  s.accesses_per_sec_per_thread = 6e5;            // moderate LC request rate
  s.compute_cycles_per_access = 50.0;             // thin KV lookup path
  s.latency_exposure = 1.0;                       // dependent hash chains
  s.shared_access_fraction = 0.85;                // one shared store
  return s;
}

MemcachedModel::MemcachedModel(std::uint64_t seed)
    : Workload(default_spec(),
               /*shared_pages=*/default_spec().rss_pages * 85 / 100,
               // 90% of requests hit the hot key set (20% of the store,
               // so typical hot-page heat sits *below* the BE scanners' —
               // the cold-page-dilemma precondition), with Zipf-skewed key
               // popularity inside it (the very hottest keys can survive a
               // global threshold); 10% SETs => writes.
               std::make_unique<SkewedHotsetPattern>(
                   default_spec().rss_pages * 85 / 100, 0.20, 0.90, 0.10),
               // Private slices: connection/slab bookkeeping, write-heavier.
               std::make_unique<UniformPattern>(1 << 16, 0.30),
               seed) {}

double MemcachedModel::rate_multiplier(double sim_seconds) const {
  return 1.0 + 0.3 * std::sin(sim_seconds * 2.0 * 3.14159265358979 / 20.0);
}

// ----------------------------------------------------------------- PageRank

WorkloadSpec PageRankModel::default_spec() {
  WorkloadSpec s;
  s.name = "pagerank";
  s.service_class = ServiceClass::kBestEffort;
  s.rss_pages = gb_pages(42);                     // Table 2
  s.wss_pages = s.rss_pages;                      // whole graph swept
  s.threads = 8;
  s.accesses_per_sec_per_thread = 2e6;
  s.compute_cycles_per_access = 150.0;            // rank arithmetic
  s.latency_exposure = 0.7;                       // irregular, partly MLP'd
  s.shared_access_fraction = 0.55;                // shared rank/in-edge reads
  return s;
}

PageRankModel::PageRankModel(std::uint64_t seed)
    : Workload(default_spec(),
               /*shared_pages=*/default_spec().rss_pages * 55 / 100,
               // Shared rank-vector reads: skewed toward high-degree nodes.
               std::make_unique<ZipfianPattern>(
                   default_spec().rss_pages * 55 / 100, 0.8, 0.05),
               // Private CSR slice sweep (placeholder; next_access overrides)
               std::make_unique<SequentialPattern>(1 << 16, 0.10),
               seed),
      graph_({/*nodes=*/50'000, /*mean_degree=*/16.0, /*degree_skew=*/2.0,
              seed}),
      cursors_(spec_.threads, 0) {
  // Stagger thread cursors across the node space.
  for (unsigned t = 0; t < spec_.threads; ++t) {
    cursors_[t] = graph_.node_count() * t / spec_.threads;
  }
}

WorkloadAccess PageRankModel::next_access(unsigned thread) {
  if (rng_.chance(spec_.shared_access_fraction)) {
    // Chase an in-edge: read the rank of a random neighbour of the node
    // under the cursor. Graph structure biases toward low node ids.
    const std::uint64_t node = cursors_[thread] % graph_.node_count();
    const auto edges = graph_.out_edges(node);
    std::uint64_t target = node;
    if (!edges.empty()) target = edges[rng_.below(edges.size())];
    // Map node id onto the shared region (rank + adjacency metadata).
    const std::uint64_t page =
        shared_pages_ ? (target * 7919) % shared_pages_ : 0;
    return {page, /*is_write=*/rng_.chance(0.05)};
  }
  // Private sweep through this thread's CSR slice.
  const std::uint64_t node = cursors_[thread] % graph_.node_count();
  cursors_[thread] = (cursors_[thread] + 1) % graph_.node_count();
  const std::uint64_t page = private_slice_
                                 ? (graph_.edge_byte_offset(node) /
                                    sim::kPageSize) % private_slice_
                                 : 0;
  return {shared_pages_ + thread * private_slice_ + page,
          /*is_write=*/rng_.chance(0.10)};
}

// ---------------------------------------------------------------- Liblinear

WorkloadSpec LiblinearModel::default_spec() {
  WorkloadSpec s;
  s.name = "liblinear";
  s.service_class = ServiceClass::kBestEffort;
  s.rss_pages = gb_pages(69);                     // Table 2 (KDD12)
  s.wss_pages = s.rss_pages;
  s.threads = 8;
  s.accesses_per_sec_per_thread = 4e6;            // bandwidth-bound scans
  s.compute_cycles_per_access = 60.0;
  s.latency_exposure = 0.25;                      // prefetched streaming
  s.shared_access_fraction = 0.15;                // small shared model vector
  return s;
}

LiblinearModel::LiblinearModel(std::uint64_t seed)
    : Workload(default_spec(),
               // Shared model/weight vector: small and hot, read-write.
               /*shared_pages=*/gb_pages(1),
               std::make_unique<UniformPattern>(gb_pages(1), 0.50),
               // Private: streaming pass over the thread's matrix shard.
               std::make_unique<SequentialPattern>(
                   (default_spec().rss_pages - gb_pages(1)) /
                       default_spec().threads,
                   0.02),
               seed) {}

// --------------------------------------------------------------- Microbench

namespace {
WorkloadSpec microbench_spec(const MicrobenchWorkload::Params& p) {
  WorkloadSpec s;
  s.name = "microbench";
  s.service_class = ServiceClass::kBestEffort;
  s.rss_pages = p.rss_pages;
  s.wss_pages = p.wss_pages;
  s.threads = p.threads;
  s.accesses_per_sec_per_thread = p.access_rate_per_thread;
  s.compute_cycles_per_access = 30.0;
  s.latency_exposure = 1.0;
  s.shared_access_fraction = 1.0;  // all threads hit the same WSS
  return s;
}
}  // namespace

MicrobenchWorkload::MicrobenchWorkload(Params p)
    : Workload(microbench_spec(p),
               /*shared_pages=*/p.rss_pages,
               std::make_unique<ZipfianPattern>(p.wss_pages, p.zipf_theta,
                                                p.write_ratio),
               std::make_unique<UniformPattern>(p.rss_pages, p.write_ratio),
               p.seed),
      wss_pages_(p.wss_pages),
      drift_rate_(p.drift_pages_per_sec) {}

WorkloadAccess MicrobenchWorkload::next_access(unsigned /*thread*/) {
  // Zipfian over the (possibly drifting) WSS window; the rest of the RSS
  // is allocated but cold.
  const PageAccess a = shared_pattern_->next(rng_);
  return {(offset_ + a.page % wss_pages_) % spec_.rss_pages, a.is_write};
}

void MicrobenchWorkload::on_epoch(double sim_seconds) {
  if (drift_rate_ > 0.0) {
    offset_ = static_cast<std::uint64_t>(drift_rate_ * sim_seconds) %
              spec_.rss_pages;
  }
}

// ---------------------------------------------------------------- factories

std::unique_ptr<Workload> make_memcached(std::uint64_t seed) {
  return std::make_unique<MemcachedModel>(seed);
}
std::unique_ptr<Workload> make_pagerank(std::uint64_t seed) {
  return std::make_unique<PageRankModel>(seed);
}
std::unique_ptr<Workload> make_liblinear(std::uint64_t seed) {
  return std::make_unique<LiblinearModel>(seed);
}

}  // namespace vulcan::wl

#include "wl/zipf.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace vulcan::wl {

double ZipfianGenerator::zeta(std::uint64_t n, double theta) {
  // Direct summation; items counts in this simulator are <= a few million
  // and generators are built once per workload.
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t items, double theta)
    : items_(items), theta_(theta) {
  if (items_ == 0) {
    throw std::invalid_argument("ZipfianGenerator: items must be > 0");
  }
  // theta == 1.0 makes alpha = 1/(1-theta) infinite and the Gray et al.
  // rejection-free construction undefined (and theta > 1 or < 0 is outside
  // its derivation entirely). Reject rather than silently emit garbage.
  if (!(theta_ >= 0.0 && theta_ < 1.0)) {
    throw std::invalid_argument(
        "ZipfianGenerator: theta must be in [0, 1), got " +
        std::to_string(theta_));
  }
  zetan_ = zeta(items_, theta_);
  zeta2_ = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
  pow_half_theta_ = std::pow(0.5, theta_);
}

std::uint64_t ZipfianGenerator::next(sim::Rng& rng) const {
  const double u = rng.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + pow_half_theta_) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(items_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= items_ ? items_ - 1 : rank;
}

double ZipfianGenerator::pmf(std::uint64_t k) const {
  return 1.0 / (std::pow(static_cast<double>(k + 1), theta_) * zetan_);
}

}  // namespace vulcan::wl

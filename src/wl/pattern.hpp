// Synthetic memory access patterns.
//
// A pattern produces page-granular accesses (offset within a region of
// `pages`, read or write). Patterns capture the archetypes the paper's
// motivation cites: uniform random, sequential streaming, Zipfian-skewed,
// and hot-set (a small fraction of pages receiving most accesses).
#pragma once

#include <cstdint>
#include <memory>

#include "sim/rng.hpp"
#include "wl/zipf.hpp"

namespace vulcan::wl {

/// One page-granular access within a region.
struct PageAccess {
  std::uint64_t page = 0;  ///< offset in pages from the region base
  bool is_write = false;
};

/// Interface for page-access generators. Implementations keep per-instance
/// cursor state (sequential position etc.); randomness comes from the
/// caller's RNG so determinism is inherited.
class AccessPattern {
 public:
  virtual ~AccessPattern() = default;

  virtual PageAccess next(sim::Rng& rng) = 0;

  /// Size of the region the pattern addresses, in pages.
  virtual std::uint64_t pages() const = 0;
};

/// Uniform random over [0, pages).
class UniformPattern final : public AccessPattern {
 public:
  UniformPattern(std::uint64_t pages, double write_ratio)
      : pages_(pages), write_ratio_(write_ratio) {}

  PageAccess next(sim::Rng& rng) override {
    return {rng.below(pages_), rng.chance(write_ratio_)};
  }
  std::uint64_t pages() const override { return pages_; }

 private:
  std::uint64_t pages_;
  double write_ratio_;
};

/// Sequential sweep with wraparound (streaming scans, e.g. Liblinear's
/// epoch passes over the training matrix).
class SequentialPattern final : public AccessPattern {
 public:
  SequentialPattern(std::uint64_t pages, double write_ratio,
                    std::uint64_t start = 0)
      : pages_(pages), write_ratio_(write_ratio), cursor_(start % pages) {}

  PageAccess next(sim::Rng& rng) override {
    const PageAccess a{cursor_, rng.chance(write_ratio_)};
    cursor_ = (cursor_ + 1) % pages_;
    return a;
  }
  std::uint64_t pages() const override { return pages_; }

 private:
  std::uint64_t pages_;
  double write_ratio_;
  std::uint64_t cursor_;
};

/// Zipfian-skewed accesses, optionally scrambled so hot pages are scattered
/// (realistic for hash-addressed stores such as Memcached).
class ZipfianPattern final : public AccessPattern {
 public:
  ZipfianPattern(std::uint64_t pages, double theta, double write_ratio,
                 bool scrambled = true)
      : plain_(pages, theta),
        scrambled_(pages, theta),
        use_scrambled_(scrambled),
        write_ratio_(write_ratio) {}

  PageAccess next(sim::Rng& rng) override {
    const std::uint64_t page =
        use_scrambled_ ? scrambled_.next(rng) : plain_.next(rng);
    return {page, rng.chance(write_ratio_)};
  }
  std::uint64_t pages() const override { return plain_.items(); }

 private:
  ZipfianGenerator plain_;
  ScrambledZipfianGenerator scrambled_;
  bool use_scrambled_;
  double write_ratio_;
};

/// Hot-set pattern: `hot_fraction` of the pages receive `hot_probability`
/// of the accesses, uniformly within each class. The paper's Memcached
/// setup ("a hot key set accessed 90% of the time") is hot_fraction ~ 0.1,
/// hot_probability 0.9.
class HotsetPattern final : public AccessPattern {
 public:
  HotsetPattern(std::uint64_t pages, double hot_fraction,
                double hot_probability, double write_ratio)
      : pages_(pages),
        hot_pages_(std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(hot_fraction *
                                          static_cast<double>(pages)))),
        hot_probability_(hot_probability),
        write_ratio_(write_ratio) {}

  PageAccess next(sim::Rng& rng) override {
    const bool hot = rng.chance(hot_probability_);
    const std::uint64_t page = hot
                                   ? rng.below(hot_pages_)
                                   : hot_pages_ + rng.below(pages_ - hot_pages_);
    return {page, rng.chance(write_ratio_)};
  }
  std::uint64_t pages() const override { return pages_; }
  std::uint64_t hot_pages() const { return hot_pages_; }

 private:
  std::uint64_t pages_;
  std::uint64_t hot_pages_;
  double hot_probability_;
  double write_ratio_;
};

/// Hot-set pattern with Zipfian popularity *inside* the hot set: the hot
/// region takes `hot_probability` of accesses (like HotsetPattern), but
/// within it keys follow a Zipfian law — realistic for caches and stores
/// where even "hot" keys differ by orders of magnitude. Under threshold-
/// based tiering this leaves a gradient: the hottest keys can survive a
/// global threshold that evicts the hot set's tail.
class SkewedHotsetPattern final : public AccessPattern {
 public:
  SkewedHotsetPattern(std::uint64_t pages, double hot_fraction,
                      double hot_probability, double write_ratio,
                      double hot_theta = 0.9)
      : pages_(pages),
        hot_pages_(std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(hot_fraction *
                                          static_cast<double>(pages)))),
        hot_probability_(hot_probability),
        write_ratio_(write_ratio),
        hot_zipf_(hot_pages_, hot_theta) {}

  PageAccess next(sim::Rng& rng) override {
    const bool hot = rng.chance(hot_probability_);
    const std::uint64_t page =
        hot ? hot_zipf_.next(rng)
            : hot_pages_ + rng.below(pages_ - hot_pages_);
    return {page, rng.chance(write_ratio_)};
  }
  std::uint64_t pages() const override { return pages_; }
  std::uint64_t hot_pages() const { return hot_pages_; }

 private:
  std::uint64_t pages_;
  std::uint64_t hot_pages_;
  double hot_probability_;
  double write_ratio_;
  ScrambledZipfianGenerator hot_zipf_;
};

/// Mixture of two patterns: with probability `p_first` draw from `first`.
/// Used to compose e.g. sequential scans with random lookups (in-memory
/// databases combine both, per the paper's introduction).
class MixturePattern final : public AccessPattern {
 public:
  MixturePattern(std::unique_ptr<AccessPattern> first,
                 std::unique_ptr<AccessPattern> second, double p_first)
      : first_(std::move(first)), second_(std::move(second)),
        p_first_(p_first) {}

  PageAccess next(sim::Rng& rng) override {
    return rng.chance(p_first_) ? first_->next(rng) : second_->next(rng);
  }
  std::uint64_t pages() const override {
    return std::max(first_->pages(), second_->pages());
  }

 private:
  std::unique_ptr<AccessPattern> first_;
  std::unique_ptr<AccessPattern> second_;
  double p_first_;
};

}  // namespace vulcan::wl

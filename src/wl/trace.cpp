#include "wl/trace.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace vulcan::wl {

namespace {
constexpr char kMagic[4] = {'V', 'L', 'C', 'T'};
constexpr std::uint16_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("trace: truncated stream");
  return value;
}
}  // namespace

std::uint64_t Trace::save(std::ostream& out) const {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint16_t>(threads_));
  write_pod(out, rss_pages_);
  write_pod(out, static_cast<std::uint64_t>(records_.size()));
  for (const auto& r : records_) write_pod(out, r.pack());
  return sizeof(kMagic) + sizeof(kVersion) + sizeof(std::uint16_t) +
         sizeof(rss_pages_) + sizeof(std::uint64_t) +
         records_.size() * sizeof(std::uint64_t);
}

Trace Trace::load(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace: bad magic");
  }
  const auto version = read_pod<std::uint16_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("trace: unsupported version");
  }
  const auto threads = read_pod<std::uint16_t>(in);
  const auto rss = read_pod<std::uint64_t>(in);
  const auto count = read_pod<std::uint64_t>(in);
  Trace trace(rss, threads);
  trace.records_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    trace.records_.push_back(TraceRecord::unpack(read_pod<std::uint64_t>(in)));
  }
  return trace;
}

// ----------------------------------------------------------------- record

namespace {
WorkloadSpec passthrough_spec(const Workload& inner) { return inner.spec(); }
}  // namespace

RecordingWorkload::RecordingWorkload(std::unique_ptr<Workload> inner,
                                     Trace& trace)
    : Workload(passthrough_spec(*inner), 0, nullptr, nullptr, /*seed=*/0),
      inner_(std::move(inner)),
      trace_(&trace) {}

WorkloadAccess RecordingWorkload::next_access(unsigned thread) {
  const WorkloadAccess a = inner_->next_access(thread);
  trace_->append({a.page, static_cast<std::uint8_t>(thread), a.is_write});
  return a;
}

void RecordingWorkload::on_epoch(double sim_seconds) {
  inner_->on_epoch(sim_seconds);
}

double RecordingWorkload::rate_multiplier(double sim_seconds) const {
  return inner_->rate_multiplier(sim_seconds);
}

// ----------------------------------------------------------------- replay

namespace {
WorkloadSpec replay_spec(const Trace& trace, WorkloadSpec spec) {
  if (spec.name.empty()) spec.name = "trace-replay";
  spec.rss_pages = trace.rss_pages();
  spec.threads = std::max(1u, trace.threads());
  return spec;
}
}  // namespace

ReplayWorkload::ReplayWorkload(Trace trace, WorkloadSpec spec)
    : Workload(replay_spec(trace, std::move(spec)), 0, nullptr, nullptr, 0),
      trace_(std::move(trace)) {}

WorkloadAccess ReplayWorkload::next_access(unsigned /*thread*/) {
  if (trace_.records().empty()) return {};
  const TraceRecord& r = trace_.records()[cursor_];
  cursor_ = (cursor_ + 1) % trace_.records().size();
  last_thread_ = r.thread;
  return {r.page, r.is_write};
}

}  // namespace vulcan::wl

// Synthetic power-law graph in CSR form, backing the PageRank workload
// model. Degrees follow a discrete Pareto-like law (web graphs), edges are
// drawn preferentially toward low-numbered nodes, and the whole structure
// is a deterministic function of the seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/rng.hpp"

namespace vulcan::wl {

class CsrGraph {
 public:
  struct Params {
    std::uint64_t nodes = 10'000;
    double mean_degree = 16.0;
    double degree_skew = 2.0;  ///< Pareto shape; lower = heavier tail
    std::uint64_t seed = 1;
  };

  explicit CsrGraph(Params params);

  std::uint64_t node_count() const { return offsets_.size() - 1; }
  std::uint64_t edge_count() const { return edges_.size(); }

  std::span<const std::uint32_t> out_edges(std::uint64_t node) const {
    return {edges_.data() + offsets_[node],
            edges_.data() + offsets_[node + 1]};
  }
  std::uint64_t out_degree(std::uint64_t node) const {
    return offsets_[node + 1] - offsets_[node];
  }

  /// Byte offset of a node's adjacency list within the CSR edge array —
  /// used to map graph traversal onto page accesses.
  std::uint64_t edge_byte_offset(std::uint64_t node) const {
    return offsets_[node] * sizeof(std::uint32_t);
  }
  std::uint64_t edges_bytes() const {
    return edges_.size() * sizeof(std::uint32_t);
  }

 private:
  std::vector<std::uint64_t> offsets_;  // nodes + 1
  std::vector<std::uint32_t> edges_;
};

}  // namespace vulcan::wl

// Access-trace capture and replay.
//
// Any workload's access stream can be recorded to a compact binary trace
// and replayed later — pinning down a workload exactly across policy
// comparisons, sharing reproducible inputs, or importing externally
// captured traces (each record is page-granular: thread, page offset,
// read/write).
//
// Format (little-endian):
//   header   magic "VLCT", u16 version, u16 threads, u64 rss_pages,
//            u64 record_count
//   records  u64 each: page[0..39] | thread[40..47] | is_write[48]
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "wl/workload.hpp"

namespace vulcan::wl {

struct TraceRecord {
  std::uint64_t page = 0;
  std::uint8_t thread = 0;
  bool is_write = false;

  std::uint64_t pack() const {
    return (page & ((1ULL << 40) - 1)) |
           (static_cast<std::uint64_t>(thread) << 40) |
           (static_cast<std::uint64_t>(is_write) << 48);
  }
  static TraceRecord unpack(std::uint64_t raw) {
    return {raw & ((1ULL << 40) - 1),
            static_cast<std::uint8_t>((raw >> 40) & 0xFF),
            ((raw >> 48) & 1) != 0};
  }
};

/// In-memory trace plus (de)serialisation.
class Trace {
 public:
  Trace() = default;
  Trace(std::uint64_t rss_pages, unsigned threads)
      : rss_pages_(rss_pages), threads_(threads) {}

  void append(const TraceRecord& r) { records_.push_back(r); }
  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  std::uint64_t rss_pages() const { return rss_pages_; }
  unsigned threads() const { return threads_; }

  /// Serialise to a stream. Returns bytes written.
  std::uint64_t save(std::ostream& out) const;

  /// Parse from a stream; throws std::runtime_error on a malformed trace.
  static Trace load(std::istream& in);

 private:
  std::uint64_t rss_pages_ = 0;
  unsigned threads_ = 0;
  std::vector<TraceRecord> records_;
};

/// Decorator: forwards to an inner workload while recording every access.
class RecordingWorkload final : public Workload {
 public:
  RecordingWorkload(std::unique_ptr<Workload> inner, Trace& trace);

  WorkloadAccess next_access(unsigned thread) override;
  void on_epoch(double sim_seconds) override;
  double rate_multiplier(double sim_seconds) const override;

 private:
  std::unique_ptr<Workload> inner_;
  Trace* trace_;
};

/// Replays a trace as a workload: next_access() returns records in order,
/// wrapping around at the end (steady-state replay). The requesting thread
/// index is ignored — the trace already carries thread attribution.
class ReplayWorkload final : public Workload {
 public:
  /// @param spec_overrides  optional spec; rss/threads are forced to the
  ///                        trace's own values.
  explicit ReplayWorkload(Trace trace, WorkloadSpec spec = {});

  WorkloadAccess next_access(unsigned thread) override;

  /// Thread id the *last* returned access was attributed to in the trace.
  unsigned last_thread() const { return last_thread_; }
  std::size_t cursor() const { return cursor_; }

 private:
  Trace trace_;
  std::size_t cursor_ = 0;
  unsigned last_thread_ = 0;
};

}  // namespace vulcan::wl

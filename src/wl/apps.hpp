// Application workload models matching the paper's Table 2 and §5.3:
//
//   Memcached  (LC)  in-memory KV store under YCSB-C: 90% GET / 10% SET,
//                    a hot key set receiving 90% of accesses, RSS 51 GB.
//   PageRank   (BE)  memory- and compute-intensive graph sweep, RSS 42 GB.
//   Liblinear  (BE)  linear classification over KDD12: bandwidth-bound
//                    epoch scans, RSS 69 GB.
//
// Capacities are scaled by sim::kCapacityScale (GB -> MB); rates, skews and
// read/write mixes are unscaled so the dilemma dynamics are preserved.
// A Nomad-style microbenchmark workload (Zipfian over a configurable WSS
// inside a larger RSS) backs the §5.2 migration-policy experiments.
#pragma once

#include <memory>

#include "wl/graph.hpp"
#include "wl/workload.hpp"

namespace vulcan::wl {

/// Memcached under YCSB-C-like load (LC). Hot set: 10% of pages take 90%
/// of accesses; dependent hash+pointer lookups expose full memory latency.
class MemcachedModel final : public Workload {
 public:
  explicit MemcachedModel(std::uint64_t seed = 101);
  static WorkloadSpec default_spec();

  /// User-driven demand oscillates (+-30%, ~20 s period) — the burstiness
  /// signature the LC/BE classifier detects.
  double rate_multiplier(double sim_seconds) const override;
};

/// PageRank over a synthetic power-law web graph (BE-ish). Threads sweep
/// private node ranges sequentially while chasing shared in-edges randomly.
class PageRankModel final : public Workload {
 public:
  explicit PageRankModel(std::uint64_t seed = 202);
  static WorkloadSpec default_spec();

  WorkloadAccess next_access(unsigned thread) override;

 private:
  CsrGraph graph_;
  std::vector<std::uint64_t> cursors_;  // per-thread node cursor
};

/// Liblinear on KDD12 (BE): streaming passes over a huge training matrix
/// (private, prefetch-friendly) plus a small hot shared model vector.
class LiblinearModel final : public Workload {
 public:
  explicit LiblinearModel(std::uint64_t seed = 303);
  static WorkloadSpec default_spec();
};

/// The Nomad-microbenchmark workload of §5.2: data placed across the
/// tiers, Zipfian accesses over a working set of `wss_pages` within an RSS
/// of `rss_pages`, with a configurable read/write mix.
class MicrobenchWorkload final : public Workload {
 public:
  struct Params {
    std::uint64_t rss_pages = 4096;
    std::uint64_t wss_pages = 1024;
    unsigned threads = 8;
    double write_ratio = 0.2;
    double zipf_theta = 0.99;
    double access_rate_per_thread = 2e6;
    /// Hot-spot drift: the working set's base offset advances this many
    /// pages per second, cycling through the RSS (0 = stationary). Drift
    /// forces continuous promote/cool/demote churn — the regime where
    /// shadow copies and migration efficiency matter most.
    double drift_pages_per_sec = 0.0;
    std::uint64_t seed = 404;
  };
  explicit MicrobenchWorkload(Params params);

  WorkloadAccess next_access(unsigned thread) override;
  void on_epoch(double sim_seconds) override;

  std::uint64_t wss_offset() const { return offset_; }

 private:
  std::uint64_t wss_pages_;
  double drift_rate_;
  std::uint64_t offset_ = 0;
};

/// Factory helpers for the co-location study (§5.3 timeline).
std::unique_ptr<Workload> make_memcached(std::uint64_t seed = 101);
std::unique_ptr<Workload> make_pagerank(std::uint64_t seed = 202);
std::unique_ptr<Workload> make_liblinear(std::uint64_t seed = 303);

}  // namespace vulcan::wl

// Workload model: the unit the tiering policies manage.
//
// A workload owns an access-generation model (patterns over its resident
// set, split into thread-private slices and a shared region) plus the
// scalar characteristics that determine its performance sensitivity to
// tier placement: access intensity, compute per access, and how much of
// the memory latency its access stream can overlap (prefetchable streams
// hide most of it; dependent random accesses expose all of it).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/rng.hpp"
#include "wl/pattern.hpp"

namespace vulcan::wl {

/// Latency-critical vs best-effort (the paper's LC/BE split).
enum class ServiceClass : std::uint8_t { kLatencyCritical, kBestEffort };

struct WorkloadSpec {
  std::string name;
  ServiceClass service_class = ServiceClass::kBestEffort;
  std::uint64_t rss_pages = 0;
  /// Actively accessed pages (<= rss). Informational; patterns decide.
  std::uint64_t wss_pages = 0;
  unsigned threads = 8;
  /// Memory accesses issued per second per thread when never stalled.
  double accesses_per_sec_per_thread = 1e6;
  /// Non-memory CPU work per access, cycles. Higher = less memory-bound.
  double compute_cycles_per_access = 100.0;
  /// Fraction of memory latency actually exposed to execution (1.0 =
  /// dependent pointer chasing; ~0.25 = prefetched streaming).
  double latency_exposure = 1.0;
  /// Fraction of accesses that go to the shared region (vs the accessing
  /// thread's private slice).
  double shared_access_fraction = 0.5;
};

/// An access resolved to a page offset within the workload's RSS.
struct WorkloadAccess {
  std::uint64_t page = 0;   ///< offset in [0, rss_pages)
  bool is_write = false;
};

/// Base class: concrete apps configure the two-region generation model.
///
/// Region layout within [0, rss_pages):
///   [0, shared_pages)                      shared region
///   [shared_pages, rss_pages)              split into `threads` equal
///                                          thread-private slices
class Workload {
 public:
  Workload(WorkloadSpec spec, std::uint64_t shared_pages,
           std::unique_ptr<AccessPattern> shared_pattern,
           std::unique_ptr<AccessPattern> private_pattern,
           std::uint64_t seed);
  virtual ~Workload() = default;
  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  const WorkloadSpec& spec() const { return spec_; }
  std::uint64_t shared_pages() const { return shared_pages_; }
  std::uint64_t private_pages_per_thread() const { return private_slice_; }

  /// Generate the next access for `thread` (0-based, < spec().threads).
  virtual WorkloadAccess next_access(unsigned thread);

  /// Hook for phase behaviour; called once per simulation epoch.
  virtual void on_epoch(double sim_seconds);

  /// Load modulation at simulated time `sim_seconds`: LC services show
  /// bursty user-driven demand (the signal the black-box LC/BE classifier
  /// keys on); batch jobs run flat-out. Default: constant 1.0.
  virtual double rate_multiplier(double sim_seconds) const;

  /// Total access rate across all threads (accesses per second).
  double total_access_rate() const {
    return spec_.accesses_per_sec_per_thread * spec_.threads;
  }

  /// Ideal per-access cycles with every access served from a tier of
  /// latency `fast_ns` and no stalls (the normalisation baseline).
  double ideal_cycles_per_access(double fast_ns) const;

  /// Actual per-access cycles given an average exposed memory latency.
  double cycles_per_access(double mem_latency_ns) const;

  sim::Rng& rng() { return rng_; }

 protected:
  /// Map a shared-pattern draw into the shared region; clamps defensively.
  WorkloadAccess to_shared(PageAccess a) const;
  /// Map a private-pattern draw into `thread`'s slice.
  WorkloadAccess to_private(PageAccess a, unsigned thread) const;

  WorkloadSpec spec_;
  std::uint64_t shared_pages_;
  std::uint64_t private_slice_;
  std::unique_ptr<AccessPattern> shared_pattern_;
  std::unique_ptr<AccessPattern> private_pattern_;
  sim::Rng rng_;
};

}  // namespace vulcan::wl

#include "wl/workload.hpp"

#include <algorithm>
#include <cassert>

#include "sim/clock.hpp"

namespace vulcan::wl {

Workload::Workload(WorkloadSpec spec, std::uint64_t shared_pages,
                   std::unique_ptr<AccessPattern> shared_pattern,
                   std::unique_ptr<AccessPattern> private_pattern,
                   std::uint64_t seed)
    : spec_(std::move(spec)),
      shared_pages_(std::min(shared_pages, spec_.rss_pages)),
      shared_pattern_(std::move(shared_pattern)),
      private_pattern_(std::move(private_pattern)),
      rng_(seed) {
  assert(spec_.threads > 0);
  private_slice_ = (spec_.rss_pages - shared_pages_) / spec_.threads;
}

WorkloadAccess Workload::to_shared(PageAccess a) const {
  const std::uint64_t page =
      shared_pages_ ? a.page % shared_pages_ : a.page % spec_.rss_pages;
  return {page, a.is_write};
}

WorkloadAccess Workload::to_private(PageAccess a, unsigned thread) const {
  if (private_slice_ == 0) return to_shared(a);
  const std::uint64_t base = shared_pages_ + thread * private_slice_;
  return {base + a.page % private_slice_, a.is_write};
}

WorkloadAccess Workload::next_access(unsigned thread) {
  assert(thread < spec_.threads);
  const bool shared =
      shared_pages_ > 0 &&
      (private_slice_ == 0 || rng_.chance(spec_.shared_access_fraction));
  if (shared) return to_shared(shared_pattern_->next(rng_));
  return to_private(private_pattern_->next(rng_), thread);
}

void Workload::on_epoch(double /*sim_seconds*/) {}

double Workload::rate_multiplier(double /*sim_seconds*/) const { return 1.0; }

double Workload::ideal_cycles_per_access(double fast_ns) const {
  return spec_.compute_cycles_per_access +
         spec_.latency_exposure * fast_ns *
             (static_cast<double>(sim::CpuClock::kFreqKhz) * 1e3 / 1e9);
}

double Workload::cycles_per_access(double mem_latency_ns) const {
  return spec_.compute_cycles_per_access +
         spec_.latency_exposure * mem_latency_ns *
             (static_cast<double>(sim::CpuClock::kFreqKhz) * 1e3 / 1e9);
}

}  // namespace vulcan::wl

// Fleet workload archetypes: the per-app building blocks of the O(100)-app
// co-location battery (runtime::fleet composes these into a churned
// schedule).
//
// Every random decision an app embodies — archetype parameter jitter,
// footprint size, load-curve phase, and its access stream — derives from a
// single per-app seed keyed by (fleet_seed, app_id). That keying is the
// fleet determinism contract: adding, removing, or re-parameterising one
// app never perturbs any other app's stream, so fleets of different sizes
// share a common per-app prefix and scenario diffs localise to the app
// that changed.
#pragma once

#include <cstdint>
#include <memory>

#include "wl/workload.hpp"

namespace vulcan::wl {

/// Derive app `app_id`'s private seed from the fleet seed. FNV-1a over the
/// two values' bytes: avalanching, so consecutive app ids land far apart in
/// seed space (adjacent splitmix-style seeds would correlate xoshiro
/// streams).
std::uint64_t fleet_app_seed(std::uint64_t fleet_seed, std::uint32_t app_id);

/// The three co-location roles the fleet mixes (ISSUE motivation: LC/BE
/// mixes plus antagonist bursts).
enum class FleetArchetype : std::uint8_t {
  kLcService,   ///< latency-critical, skewed hot set, diurnal demand
  kBeBatch,     ///< best-effort streaming scans, flat demand
  kAntagonist,  ///< write-heavy uniform churn arriving in bursts
};

const char* fleet_archetype_name(FleetArchetype archetype);

/// Deterministic load curve: a diurnal sinusoid with an optional square
/// burst train layered on top. Pure function of simulated time — no state,
/// so replays and `--jobs` splits agree bit-for-bit.
struct RateProfile {
  double base = 1.0;               ///< flat multiplier applied always
  double diurnal_amplitude = 0.0;  ///< fraction of base (0 = flat)
  double diurnal_period_s = 30.0;
  double diurnal_phase = 0.0;      ///< radians
  double burst_multiplier = 1.0;   ///< applied while inside a burst window
  double burst_period_s = 0.0;     ///< 0 = no bursts
  double burst_duty = 0.0;         ///< fraction of each period bursting
  double burst_phase_s = 0.0;      ///< offset into the burst cycle
};

/// Evaluate the profile at `sim_seconds`. Never returns < 0.05 so an app
/// cannot silently stop issuing accesses at a sinusoid trough.
double profile_multiplier(const RateProfile& profile, double sim_seconds);

/// A fleet app: a plain two-region workload whose rate_multiplier follows
/// its RateProfile.
class FleetWorkload final : public Workload {
 public:
  FleetWorkload(WorkloadSpec spec, std::uint64_t shared_pages,
                std::unique_ptr<AccessPattern> shared_pattern,
                std::unique_ptr<AccessPattern> private_pattern,
                std::uint64_t seed, FleetArchetype archetype,
                RateProfile profile);

  double rate_multiplier(double sim_seconds) const override;

  FleetArchetype archetype() const { return archetype_; }
  const RateProfile& profile() const { return profile_; }

 private:
  FleetArchetype archetype_;
  RateProfile profile_;
};

/// Build app `app_id` of a fleet seeded with `fleet_seed`. All jitter
/// (footprint, rates, phases) comes from fleet_app_seed(fleet_seed,
/// app_id) only, so the result is identical whatever else the fleet
/// contains. `footprint_scale` scales the page footprint (default sizes
/// target ~128 apps against the scaled 8 Ki-page fast tier).
std::unique_ptr<FleetWorkload> make_fleet_app(std::uint32_t app_id,
                                              FleetArchetype archetype,
                                              std::uint64_t fleet_seed,
                                              double footprint_scale = 1.0);

}  // namespace vulcan::wl

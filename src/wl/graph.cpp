#include "wl/graph.hpp"

#include <algorithm>
#include <cmath>

namespace vulcan::wl {

CsrGraph::CsrGraph(Params params) {
  sim::Rng rng(params.seed);
  const std::uint64_t n = std::max<std::uint64_t>(1, params.nodes);

  // Draw out-degrees from a shifted Pareto with the requested mean.
  // Pareto(shape a, scale m): mean = a*m/(a-1) for a > 1.
  const double a = std::max(1.05, params.degree_skew);
  const double scale = params.mean_degree * (a - 1.0) / a;
  std::vector<std::uint32_t> degrees(n);
  for (auto& d : degrees) {
    const double u = std::max(1e-12, 1.0 - rng.uniform());
    const double deg = scale / std::pow(u, 1.0 / a);
    d = static_cast<std::uint32_t>(
        std::min(deg, static_cast<double>(n - 1)));
  }

  offsets_.resize(n + 1);
  offsets_[0] = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    offsets_[i + 1] = offsets_[i] + degrees[i];
  }
  edges_.resize(offsets_[n]);

  // Preferential-style targets: square the uniform draw so low node ids
  // (the "old", high-in-degree nodes) are hit quadratically more often.
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t e = offsets_[i]; e < offsets_[i + 1]; ++e) {
      const double u = rng.uniform();
      edges_[e] = static_cast<std::uint32_t>(u * u * static_cast<double>(n));
    }
  }
}

}  // namespace vulcan::wl

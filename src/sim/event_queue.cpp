#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace vulcan::sim {

EventId EventQueue::schedule(Cycles when, std::function<void()> action) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(action)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;  // fired, cancelled, or unknown
  tombstones_.insert(id);
  return true;
}

Cycles EventQueue::next_time() {
  drop_tombstones();
  assert(!heap_.empty() && "next_time() on empty EventQueue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop_next() {
  drop_tombstones();
  assert(!heap_.empty() && "pop_next() on empty EventQueue");
  // priority_queue::top() returns const&; the action must be moved out, so
  // const_cast is the standard idiom (the entry is popped immediately after).
  auto& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, top.id, std::move(top.action)};
  heap_.pop();
  pending_.erase(fired.id);
  return fired;
}

void EventQueue::drop_tombstones() {
  while (!heap_.empty()) {
    auto it = tombstones_.find(heap_.top().id);
    if (it == tombstones_.end()) return;
    heap_.pop();
    tombstones_.erase(it);
  }
}

}  // namespace vulcan::sim

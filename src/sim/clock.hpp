// Cycle-domain time for the Vulcan simulation substrate.
//
// All cost accounting in the simulator is done in CPU cycles of the modelled
// machine (a 3.0 GHz Xeon 8378A-class part, matching the paper's testbed).
// Wall-clock quantities (memory latencies in ns, epoch lengths in ms) convert
// through `CpuClock`.
#pragma once

#include <cstdint>

namespace vulcan::sim {

/// Simulated CPU cycles. Signed arithmetic is never needed; deltas are
/// produced by subtraction of monotone timestamps.
using Cycles = std::uint64_t;

/// Simulated nanoseconds.
using Nanos = std::uint64_t;

/// Fixed-frequency clock of the modelled CPU.
class CpuClock {
 public:
  /// Frequency of the modelled part in kHz (3.0 GHz). Integer kHz keeps all
  /// conversions exact enough while avoiding floating point in hot paths.
  static constexpr std::uint64_t kFreqKhz = 3'000'000;

  static constexpr Cycles from_nanos(Nanos ns) {
    return ns * kFreqKhz / 1'000'000;
  }
  static constexpr Nanos to_nanos(Cycles cycles) {
    return cycles * 1'000'000 / kFreqKhz;
  }
  static constexpr Cycles from_micros(std::uint64_t us) {
    return from_nanos(us * 1'000);
  }
  static constexpr Cycles from_millis(std::uint64_t ms) {
    return from_nanos(ms * 1'000'000);
  }
  static constexpr double to_seconds(Cycles cycles) {
    return static_cast<double>(cycles) / (static_cast<double>(kFreqKhz) * 1e3);
  }
};

static_assert(CpuClock::from_nanos(70) == 210, "70ns @3GHz = 210 cycles");
static_assert(CpuClock::from_nanos(162) == 486, "162ns @3GHz = 486 cycles");
static_assert(CpuClock::to_nanos(CpuClock::from_millis(100)) == 100'000'000);

}  // namespace vulcan::sim

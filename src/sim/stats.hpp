// Lightweight statistics primitives shared by the whole simulator:
// running moments, exponential moving averages, log-bucketed histograms and
// timestamped series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/clock.hpp"

namespace vulcan::sim {

/// Streaming mean/variance/min/max (Welford). O(1) memory.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);
  void reset() { *this = RunningStat{}; }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponential moving average with weight `alpha` on the newest sample —
/// the smoothing the paper's Eq. (2) applies to fast-tier hit ratios.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}

  /// Fold in a new observation and return the updated average.
  double update(double x);

  double value() const { return value_; }
  bool primed() const { return primed_; }
  double alpha() const { return alpha_; }
  void reset() { primed_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;  // first sample seeds the average directly
};

/// Histogram over non-negative integers with power-of-two buckets
/// (bucket b holds values in [2^b, 2^(b+1)), bucket 0 holds {0, 1}).
/// Supports approximate quantiles; exact enough for latency reporting.
class LogHistogram {
 public:
  void add(std::uint64_t value, std::uint64_t weight = 1);
  std::uint64_t count() const { return total_; }
  double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }

  /// Approximate quantile (q in [0,1]): linear interpolation inside the
  /// containing bucket.
  double quantile(double q) const;

  /// Bucket counts, index = floor(log2(max(value,1))).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// A timestamped scalar series, e.g. per-epoch FTHR of one workload.
class TimeSeries {
 public:
  void record(Cycles t, double value) { points_.push_back({t, value}); }

  struct Point {
    Cycles time;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  double last() const { return points_.empty() ? 0.0 : points_.back().value; }
  double mean() const;

  /// Time-weighted mean over [t0, t1] assuming step interpolation.
  double time_weighted_mean(Cycles t0, Cycles t1) const;

 private:
  std::vector<Point> points_;
};

}  // namespace vulcan::sim

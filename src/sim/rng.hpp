// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component (workload access patterns, profiler sampling,
// async-copy dirty races) draws from an explicitly seeded `Rng` so that a
// whole experiment is a pure function of its seed: identical seeds produce
// identical metrics, which the integration tests rely on.
#pragma once

#include <cstdint>
#include <limits>

namespace vulcan::sim {

/// splitmix64 — used to expand a single user seed into stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    // Seed the full state through splitmix64 as the authors recommend.
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). 53 random mantissa bits.
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift reduction;
  /// bias is negligible for the bounds used in the simulator.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // __uint128_t is supported by all target compilers (GCC/Clang, x86-64).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial with probability `p` of returning true.
  constexpr bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream (for per-workload / per-thread RNGs).
  constexpr Rng fork() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace vulcan::sim

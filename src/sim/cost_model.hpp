// Calibrated cost model for page-migration mechanics.
//
// The paper's Observations #2-#4 are statements about measured cost curves of
// the Linux v5.15 migration path on a 32-core Xeon. We reproduce those curves
// from first-principles components (per-CPU synchronisation during migration
// preparation, per-IPI TLB shootdown cost, per-page unmap/copy/remap cost)
// whose constants are *fitted to the paper's published data points*:
//
//   Fig. 2  single 4 KB page migration: total 50 K cycles at 2 CPUs rising to
//           750 K at 32 CPUs; preparation share 38.3 % -> 76.9 % (a 30x rise,
//           attributed to lru_add_drain_all()'s on_each_cpu_mask()).
//   Fig. 3  batched migration: TLB operations reach ~65 % of migration time
//           at 32 threads x 512 pages, while page copying dominates for small
//           batches.
//   Fig. 7  optimised preparation alone yields up to 3.44x for 2-page
//           migrations; adding targeted shootdowns yields up to 4.06x.
//
// Two shootdown paths are modelled because the paper's two microbenchmarks
// exercise different kernel regimes: Fig. 2 measures a cold move_pages()-style
// migration (full IPI broadcast with acknowledgement and scheduling latency,
// ~1.6 us per target core), while Fig. 3 measures steady-state batched
// migration where flush IPIs overlap and the dominant per-page cost is flush
// entry bookkeeping (~hundreds of cycles per page plus a small per-core term).
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/clock.hpp"

namespace vulcan::sim {

/// Tunable constants of the migration cost model. All values are CPU cycles
/// of the modelled 3 GHz part unless noted.
struct CostModelParams {
  // --- Migration preparation (Observation #2) ---------------------------
  /// prep(c) = prep_coeff * c^prep_exponent. Fitted so that
  /// prep(2) = 19.2K (38.3% of 50K) and prep(32) = 576.7K (76.9% of 750K),
  /// i.e. the 30x growth the paper reports for 2 -> 32 CPUs.
  double prep_coeff = 8183.0;
  double prep_exponent = 1.227;
  /// Residual fraction of preparation cost that survives Vulcan's
  /// optimisation (local-only LRU drain, no cross-CPU broadcast), plus a
  /// small fixed bookkeeping term.
  double prep_opt_residual = 0.20;
  Cycles prep_opt_fixed = 1500;

  // --- Per-page unmap / remap -------------------------------------------
  /// PTE lock acquisition + unmap of one 4 KB mapping (cold path: includes
  /// rmap walk and folio lock handoff).
  Cycles unmap_per_page = 6000;
  /// PTE remap + page table maintenance of one 4 KB mapping (cold path).
  Cycles remap_per_page = 4000;
  /// Batched-path equivalents: rmap walks and PTE locks amortise across
  /// the batch.
  Cycles unmap_batched_per_page = 600;
  Cycles remap_batched_per_page = 400;

  // --- TLB shootdown (Observation #3) ------------------------------------
  /// Cold-path (single page, move_pages()-style) broadcast: fixed kernel
  /// entry plus a per-target-core send+ack cost (~1.6 us).
  Cycles shootdown_cold_fixed = 500;
  Cycles shootdown_cold_per_core = 4800;
  /// Batched-path per-page flush bookkeeping plus a small per-core term for
  /// the overlapped flush IPIs.
  Cycles shootdown_batched_per_page = 400;
  Cycles shootdown_batched_per_page_per_core = 150;
  /// Cost of flushing the local TLB only (no IPIs), used when per-thread
  /// page tables prove a page is private to the migrating thread's core.
  Cycles shootdown_local_only = 500;
  /// Per-page local invlpg cost in a batched, IPI-free flush.
  Cycles shootdown_local_per_page = 100;

  // --- Page copy ----------------------------------------------------------
  /// Copying one 4 KB page across the inter-tier link in a cold single-page
  /// migration (destination folio allocation + memcpy + accounting).
  Cycles copy_single_page = 12000;
  /// Batched copy: per-page cost declines with batch size as allocation and
  /// streaming overheads amortise: copy(p) = p * (copy_batched_floor +
  /// copy_batched_decay / sqrt(p)).
  double copy_batched_floor = 1400.0;
  double copy_batched_decay = 8000.0;

  /// CPU-side cost of queueing one page copy to a DMA engine (HeMem-style
  /// offload; the transfer itself overlaps with execution).
  Cycles dma_setup_cycles = 1500;

  // --- Misc ---------------------------------------------------------------
  /// Kernel trap / syscall entry for initiating a migration.
  Cycles kernel_trap = 1200;
  /// TLB miss page-walk penalty (4-level walk, partially cached).
  Cycles tlb_miss_walk = 90;
  /// Minor fault service cost (used by hint-fault profiling).
  Cycles minor_fault = 5400;  // ~1.8 us
};

/// Pure-arithmetic query interface over `CostModelParams`. Stateless and
/// cheap; meant to be consulted inside hot simulation loops.
class CostModel {
 public:
  explicit CostModel(CostModelParams params = {}) : p_(params) {}

  const CostModelParams& params() const { return p_; }

  /// Baseline migration preparation cost with `cpus` online CPUs
  /// (lru_add_drain_all() + migration lock acquisition).
  Cycles prep_baseline(unsigned cpus) const {
    return static_cast<Cycles>(
        p_.prep_coeff * std::pow(static_cast<double>(cpus), p_.prep_exponent));
  }

  /// Optimised (Vulcan) preparation cost: cross-CPU broadcast removed.
  Cycles prep_optimized(unsigned cpus) const {
    return static_cast<Cycles>(p_.prep_opt_residual *
                               static_cast<double>(prep_baseline(cpus))) +
           p_.prep_opt_fixed;
  }

  /// Cold-path TLB shootdown broadcast to `target_cores` remote cores
  /// (0 => local flush only).
  Cycles shootdown_cold(unsigned target_cores) const {
    if (target_cores == 0) return p_.shootdown_local_only;
    return p_.shootdown_cold_fixed + p_.shootdown_cold_per_core * target_cores;
  }

  /// Batched-path shootdown for `pages` pages visible to `target_cores`
  /// remote cores.
  Cycles shootdown_batched(std::uint64_t pages, unsigned target_cores) const {
    if (target_cores == 0) return p_.shootdown_local_per_page * pages;
    return pages * (p_.shootdown_batched_per_page +
                    p_.shootdown_batched_per_page_per_core * target_cores);
  }

  /// Copy cost of a cold single-page migration.
  Cycles copy_single() const { return p_.copy_single_page; }

  /// Copy cost of a batch of `pages` 4 KB pages.
  Cycles copy_batched(std::uint64_t pages) const {
    if (pages == 0) return 0;
    const double per_page =
        p_.copy_batched_floor +
        p_.copy_batched_decay / std::sqrt(static_cast<double>(pages));
    return static_cast<Cycles>(static_cast<double>(pages) * per_page);
  }

  Cycles unmap(std::uint64_t pages) const { return p_.unmap_per_page * pages; }
  Cycles remap(std::uint64_t pages) const { return p_.remap_per_page * pages; }
  Cycles unmap_batched(std::uint64_t pages) const {
    return p_.unmap_batched_per_page * pages;
  }
  Cycles remap_batched(std::uint64_t pages) const {
    return p_.remap_batched_per_page * pages;
  }
  Cycles kernel_trap() const { return p_.kernel_trap; }
  Cycles tlb_miss_walk() const { return p_.tlb_miss_walk; }
  Cycles minor_fault() const { return p_.minor_fault; }

 private:
  CostModelParams p_;
};

/// Summary of the model evaluated at the paper's published anchor points
/// (see file header). Produced by check_calibration(); asserted by tests.
struct CalibrationCheck {
  Cycles total_2cpu = 0;        ///< paper: ~50 K cycles
  Cycles total_32cpu = 0;       ///< paper: ~750 K cycles
  double prep_share_2cpu = 0;   ///< paper: 38.3 %
  double prep_share_32cpu = 0;  ///< paper: 76.9 %
  double tlb_share_512p_32t = 0;  ///< paper: ~65 %
};

CalibrationCheck check_calibration(const CostModel& model);

}  // namespace vulcan::sim

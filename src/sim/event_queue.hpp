// Discrete-event queue: a time-ordered priority queue of callbacks.
//
// Ordering is (time, sequence-number): events scheduled for the same cycle
// fire in scheduling order, which makes simulations fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/clock.hpp"

namespace vulcan::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;

/// A time-ordered queue of `void()` actions. Not thread-safe by design: the
/// discrete-event engine is single-threaded and determinism is a feature.
class EventQueue {
 public:
  /// Schedule `action` to fire at absolute time `when`. The queue accepts any
  /// timestamp; monotonicity is the engine's concern. Returns a handle that
  /// `cancel()` accepts.
  EventId schedule(Cycles when, std::function<void()> action);

  /// Cancel a previously scheduled event. Returns false if the event already
  /// fired, was cancelled, or never existed. Lazy O(1): marks a tombstone
  /// that pop_next() skips.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return pending_.empty(); }

  /// Number of live events.
  std::size_t size() const { return pending_.size(); }

  /// Timestamp of the earliest live event. Precondition: !empty().
  Cycles next_time();

  /// Result of popping the earliest live event.
  struct Fired {
    Cycles time;
    EventId id;
    std::function<void()> action;
  };

  /// Remove and return the earliest live event. Precondition: !empty().
  Fired pop_next();

 private:
  struct Entry {
    Cycles time;
    EventId id;  // doubles as the tie-breaking sequence number
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void drop_tombstones();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;     // live ids still in the heap
  std::unordered_set<EventId> tombstones_;  // cancelled ids still in the heap
  EventId next_id_ = 1;
};

}  // namespace vulcan::sim

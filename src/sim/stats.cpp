#include "sim/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace vulcan::sim {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Ema::update(double x) {
  if (!primed_) {
    value_ = x;
    primed_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
  return value_;
}

namespace {
std::size_t bucket_index(std::uint64_t value) {
  return value <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
}
}  // namespace

void LogHistogram::add(std::uint64_t value, std::uint64_t weight) {
  const std::size_t b = bucket_index(value);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  buckets_[b] += weight;
  total_ += weight;
  sum_ += static_cast<double>(value) * static_cast<double>(weight);
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double seen = 0.0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const double c = static_cast<double>(buckets_[b]);
    if (seen + c >= target && c > 0.0) {
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
      const double hi = std::ldexp(1.0, static_cast<int>(b) + 1);
      const double frac = c > 0.0 ? (target - seen) / c : 0.0;
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return std::ldexp(1.0, static_cast<int>(buckets_.size()));
}

double TimeSeries::mean() const {
  if (points_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& p : points_) s += p.value;
  return s / static_cast<double>(points_.size());
}

double TimeSeries::time_weighted_mean(Cycles t0, Cycles t1) const {
  if (points_.empty() || t1 <= t0) return 0.0;
  double acc = 0.0;
  Cycles covered = 0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Cycles start = std::max(points_[i].time, t0);
    const Cycles end =
        std::min(i + 1 < points_.size() ? points_[i + 1].time : t1, t1);
    if (end <= start) continue;
    acc += points_[i].value * static_cast<double>(end - start);
    covered += end - start;
  }
  return covered ? acc / static_cast<double>(covered) : 0.0;
}

}  // namespace vulcan::sim

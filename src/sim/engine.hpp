// Discrete-event simulation engine: owns the virtual clock and drives the
// event queue. Single-threaded and deterministic.
#pragma once

#include <functional>
#include <limits>

#include "obs/scope.hpp"
#include "sim/clock.hpp"
#include "sim/event_queue.hpp"

namespace vulcan::sim {

/// The engine advances a virtual `Cycles` clock by firing events in
/// timestamp order. Handlers may schedule further events ("at" absolute
/// times or "after" relative delays); scheduling in the past is clamped to
/// the current time so causality is never violated.
class Engine {
 public:
  /// Current virtual time.
  Cycles now() const { return now_; }

  /// Schedule at an absolute time (clamped to now()).
  EventId at(Cycles when, std::function<void()> action) {
    scheduled_->inc();
    return queue_.schedule(when < now_ ? now_ : when, std::move(action));
  }

  /// Schedule after a relative delay from now().
  EventId after(Cycles delay, std::function<void()> action) {
    scheduled_->inc();
    return queue_.schedule(now_ + delay, std::move(action));
  }

  /// Cancel a scheduled event; false if it already fired or was cancelled.
  bool cancel(EventId id) {
    const bool ok = queue_.cancel(id);
    if (ok) cancelled_->inc();
    return ok;
  }

  /// Attach observability: counts of scheduled / fired / cancelled events
  /// land under `<scope>.events_*`, and (when the scope carries a span
  /// recorder) each handler firing is recorded as a `sim_event` span.
  void set_obs(const obs::Scope& scope) {
    obs_ = scope;
    scheduled_ = &scope.counter("events_scheduled");
    fired_ = &scope.counter("events_fired");
    cancelled_ = &scope.counter("events_cancelled");
  }

  /// Run until the queue drains or the clock would pass `deadline`
  /// (inclusive). Returns the number of events fired.
  std::uint64_t run_until(Cycles deadline);

  /// Run until the queue drains.
  std::uint64_t run() {
    return run_until(std::numeric_limits<Cycles>::max());
  }

  /// Fire at most one event. Returns false if the queue was empty or the
  /// next event lies beyond `deadline` (clock is then advanced to deadline).
  bool step(Cycles deadline = std::numeric_limits<Cycles>::max());

  /// Events still pending.
  std::size_t pending() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Cycles now_ = 0;
  obs::Scope obs_;
  obs::Counter* scheduled_ = &obs::detail::dummy_counter;
  obs::Counter* fired_ = &obs::detail::dummy_counter;
  obs::Counter* cancelled_ = &obs::detail::dummy_counter;
};

}  // namespace vulcan::sim

#include "sim/engine.hpp"

namespace vulcan::sim {

bool Engine::step(Cycles deadline) {
  if (queue_.empty()) return false;
  const Cycles t = queue_.next_time();
  if (t > deadline) {
    if (deadline > now_) now_ = deadline;
    return false;
  }
  auto fired = queue_.pop_next();
  // Events scheduled "in the past" relative to an already-advanced clock
  // were clamped at insertion; the queue is monotone by construction.
  now_ = fired.time;
  fired_->inc();
  {
    // One timeline span per handler firing; handlers that perform costed
    // work advance the shared cursor themselves, so the span brackets
    // whatever they charge.
    obs::ScopedSpan span =
        obs_.span(obs::SpanKind::kSimEvent, static_cast<double>(fired.time));
    fired.action();
  }
  return true;
}

std::uint64_t Engine::run_until(Cycles deadline) {
  std::uint64_t fired = 0;
  while (step(deadline)) ++fired;
  return fired;
}

}  // namespace vulcan::sim

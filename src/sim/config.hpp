// Global simulation scale and machine configuration.
//
// The paper's testbed exposes 32 GB of fast (local DRAM, 70 ns) and 256 GB of
// slow (CXL-emulated remote NUMA, 162 ns) memory, and its applications have
// 42-69 GB resident sets. Materialising page tables for tens of GB of 4 KB
// pages is wasteful in a simulation, so all *capacities* are scaled down by
// `kCapacityScale` (GB -> MB) while latencies, rates and all ratios stay
// unscaled. Policy behaviour depends only on the ratios.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/clock.hpp"

namespace vulcan::sim {

/// Capacity scale factor: every byte capacity from the paper is divided by
/// this before entering the simulator. 1024 turns GB into MB.
inline constexpr std::uint64_t kCapacityScale = 1024;

/// Base page size modelled throughout (x86-64 4 KB pages).
inline constexpr std::uint64_t kPageSize = 4096;
/// Transparent huge page size (2 MB).
inline constexpr std::uint64_t kHugePageSize = 2 * 1024 * 1024;
/// Base pages per huge page.
inline constexpr std::uint64_t kPagesPerHuge = kHugePageSize / kPageSize;

/// Scale a paper-quoted capacity in GiB down to simulated bytes.
constexpr std::uint64_t scaled_gib(double gib) {
  return static_cast<std::uint64_t>(gib * 1024.0 * 1024.0 * 1024.0 /
                                    static_cast<double>(kCapacityScale));
}

/// Convert a simulated byte capacity to a 4 KB page count.
constexpr std::uint64_t bytes_to_pages(std::uint64_t bytes) {
  return bytes / kPageSize;
}

/// Machine-level constants mirroring the paper's dual-socket testbed
/// (Intel Xeon Platinum 8378A, one socket used).
struct MachineConfig {
  /// Cores available to applications on the managed socket.
  unsigned cores = 32;
  /// Fast tier (locally attached DDR4): 32 GB, 70 ns unloaded.
  std::uint64_t fast_bytes = scaled_gib(32);
  Nanos fast_latency_ns = 70;
  /// Slow tier (CXL-emulated remote node): 256 GB, 162 ns unloaded.
  std::uint64_t slow_bytes = scaled_gib(256);
  Nanos slow_latency_ns = 162;
  /// Per-socket memory bandwidth (8x3200 MT/s DDR4): 205 GB/s.
  double fast_bw_gbps = 205.0;
  /// UPI / CXL link bandwidth per direction: 25 GB/s.
  double slow_bw_gbps = 25.0;

  constexpr std::uint64_t fast_pages() const { return bytes_to_pages(fast_bytes); }
  constexpr std::uint64_t slow_pages() const { return bytes_to_pages(slow_bytes); }
};

static_assert(MachineConfig{}.fast_pages() == 8192,
              "scaled 32GB fast tier is 8192 4KB pages");

}  // namespace vulcan::sim

#include "sim/cost_model.hpp"

namespace vulcan::sim {

// The CostModel API is header-inline for hot-loop use. This translation unit
// anchors the calibration against the paper's published points so a stale
// parameter edit fails loudly in one place (exercised by cost_model_test).

CalibrationCheck check_calibration(const CostModel& m) {
  CalibrationCheck c;
  // Fig. 2 anchors: single-page migration at 2 and 32 CPUs.
  const auto total = [&](unsigned cpus) {
    return m.prep_baseline(cpus) + m.unmap(1) + m.shootdown_cold(cpus - 1) +
           m.copy_single() + m.remap(1);
  };
  c.total_2cpu = total(2);
  c.total_32cpu = total(32);
  c.prep_share_2cpu = static_cast<double>(m.prep_baseline(2)) /
                      static_cast<double>(c.total_2cpu);
  c.prep_share_32cpu = static_cast<double>(m.prep_baseline(32)) /
                       static_cast<double>(c.total_32cpu);
  // Fig. 3 anchor: TLB share of batched migration time (unmap + shootdown
  // + copy + remap) at 32 threads x 512 pages.
  const auto tlb = static_cast<double>(m.shootdown_batched(512, 31));
  const auto rest = static_cast<double>(m.copy_batched(512) +
                                        m.unmap_batched(512) +
                                        m.remap_batched(512));
  c.tlb_share_512p_32t = tlb / (tlb + rest);
  return c;
}

}  // namespace vulcan::sim
